"""Tests for VTC extraction and noise margins."""

import numpy as np
import pytest

from repro.analysis import extract_vtc
from repro.errors import AnalysisError


class TestInverterVtc:
    @pytest.fixture(scope="class")
    def vtc(self):
        return extract_vtc("inverter", 1.2, 1.2)

    def test_full_swing(self, vtc):
        assert vtc.voh == pytest.approx(1.2, abs=0.02)
        assert vtc.vol == pytest.approx(0.0, abs=0.02)
        assert vtc.output_swing == pytest.approx(1.2, abs=0.04)

    def test_thresholds_ordered(self, vtc):
        assert 0.0 < vtc.vil < vtc.vih < 1.2

    def test_switching_near_midrail(self, vtc):
        assert 0.45 < vtc.switching_point < 0.75

    def test_regenerative(self, vtc):
        assert vtc.regenerative()

    def test_noise_margins_positive(self, vtc):
        assert vtc.nml > 0.1
        assert vtc.nmh > 0.1

    def test_curve_monotone_falling(self, vtc):
        assert np.all(np.diff(vtc.vout) <= 1e-6)


class TestShifterVtc:
    def test_sstvs_full_output_swing(self):
        vtc = extract_vtc("sstvs", 0.8, 1.2, points=61)
        # The defining property: full VDDO swing from a VDDI input.
        assert vtc.voh == pytest.approx(1.2, abs=0.05)
        assert vtc.vol == pytest.approx(0.0, abs=0.05)
        assert vtc.regenerative()

    def test_sstvs_falling_threshold_is_low(self):
        # The M1 discharge path needs the input below ctrl - Vt, so the
        # DC switching point (swept from input-high) sits well below
        # midrail — a real asymmetry of the latch-based cell.
        vtc = extract_vtc("sstvs", 0.8, 1.2, points=61)
        assert vtc.switching_point < 0.4

    def test_cvs_vtc(self):
        vtc = extract_vtc("cvs", 0.8, 1.2, points=61)
        assert vtc.output_swing == pytest.approx(1.2, abs=0.06)

    def test_point_count_validated(self):
        with pytest.raises(AnalysisError):
            extract_vtc("inverter", 1.2, 1.2, points=5)
