"""The standing cell x node x corner leaderboard artifact."""

import pytest

from repro.analysis.leaderboard import (
    LEADERBOARD_SCHEMA, build_leaderboard, load_leaderboard,
    rank_leaderboard, render_leaderboard, write_leaderboard,
)
from repro.errors import AnalysisError, ModelError


@pytest.fixture(scope="module")
def board():
    return build_leaderboard(cells=["inverter", "lpls_pass"],
                             nodes=["lv22"], corners=["tt", "ss"])


class TestBuild:
    def test_schema_and_coverage(self, board):
        assert board["schema"] == LEADERBOARD_SCHEMA
        assert board["cells"] == ["inverter", "lpls_pass"]
        assert set(board["nodes"]) == {"lv22"}
        assert board["corners"] == ["tt", "ss"]
        # One entry per cell x node x corner, no silent truncation.
        assert len(board["entries"]) == 2 * 1 * 2

    def test_entries_carry_all_metrics(self, board):
        for entry in board["entries"]:
            assert entry["functional"], entry
            for field in ("delay_rise", "delay_fall", "power_rise",
                          "power_fall", "leakage_high", "leakage_low"):
                assert entry[field] > 0

    def test_node_block_carries_fingerprint_and_pair(self, board):
        info = board["nodes"]["lv22"]
        assert len(info["fingerprint"]) == 16
        assert (info["vddi"], info["vddo"]) == (0.35, 0.5)

    def test_summaries_carry_area_and_min_vddi(self, board):
        for key in ("inverter@lv22", "lpls_pass@lv22"):
            summary = board["summaries"][key]
            assert summary["area_um2"] > 0
            assert summary["device_count"] > 0
            assert 0 < summary["min_detectable_vddi"] <= 0.35

    def test_unknown_corner_rejected(self):
        with pytest.raises(AnalysisError):
            build_leaderboard(cells=["inverter"], nodes=["lv22"],
                              corners=["zz"])

    def test_unknown_node_error_lists_registry(self):
        with pytest.raises(ModelError) as err:
            build_leaderboard(cells=["inverter"], nodes=["sky130"])
        assert "ptm90" in str(err.value)

    def test_unknown_cell_error_lists_registry(self):
        with pytest.raises(AnalysisError) as err:
            build_leaderboard(cells=["warp"], nodes=["lv22"],
                              corners=["tt"])
        assert "sstvs" in str(err.value)


class TestRankAndRender:
    def test_rank_is_sorted_typical_corner(self, board):
        ranked = rank_leaderboard(board, "lv22")
        assert [e["corner"] for e in ranked] == ["tt", "tt"]
        delays = [e["delay_rise"] for e in ranked]
        assert delays == sorted(delays)

    def test_render_mentions_every_cell(self, board):
        text = render_leaderboard(board)
        assert "inverter" in text and "lpls_pass" in text
        assert "lv22" in text

    def test_rank_rejects_unknown_metric(self, board):
        with pytest.raises(AnalysisError):
            rank_leaderboard(board, "lv22", metric="speed")


class TestArtifact:
    def test_write_load_roundtrip_and_versioning(self, board, tmp_path):
        path = str(tmp_path / "LEADERBOARD.json")
        first = write_leaderboard(board, path)
        assert first["version"] == 1
        again = write_leaderboard(board, path)
        assert again["version"] == 2
        loaded = load_leaderboard(path)
        assert loaded["version"] == 2
        assert loaded["entries"] == board["entries"]

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something-else"}')
        with pytest.raises(AnalysisError):
            load_leaderboard(str(path))
