"""Tests for the functional-validation grid."""

import pytest

from repro.analysis import SweepGrid, validate_functionality


class TestFunctionalValidation:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_functionality("sstvs", SweepGrid.with_step(0.3))

    def test_all_pairs_pass(self, report):
        # The paper's claim on the DVS grid.
        assert report.all_passed, report.summary()

    def test_counts(self, report):
        assert report.total == 9
        assert report.passed == 9

    def test_summary_text(self, report):
        assert "PASS" in report.summary()
        assert "9/9" in report.summary()

    def test_failures_reported(self):
        # The one-way Puri shifter must fail somewhere on a grid that
        # includes high-to-low pairs.
        report = validate_functionality("ssvs_puri",
                                        SweepGrid.with_step(0.6))
        if not report.all_passed:
            assert report.failures
            assert "FAIL" in report.summary()

    def test_empty_report_not_passed(self):
        from repro.analysis.functional import FunctionalReport
        assert not FunctionalReport(kind="x").all_passed
