"""Tests for the temperature validation flows."""

import pytest

from repro.analysis import (
    PAPER_TEMPERATURES, monte_carlo_over_temperature, sweep_temperature,
)


class TestTemperatureSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_temperature("sstvs", 1.2, 0.8,
                                 temperatures=(27.0, 90.0))

    def test_point_count(self, points):
        assert [p.temperature_c for p in points] == [27.0, 90.0]

    def test_functional_at_all_temperatures(self, points):
        assert all(p.metrics.functional for p in points)

    def test_leakage_grows_with_temperature(self, points):
        cold, hot = points
        assert hot.metrics.leakage_high > cold.metrics.leakage_high

    def test_paper_temperatures_constant(self):
        assert PAPER_TEMPERATURES == (27.0, 60.0, 90.0)


class TestMonteCarloOverTemperature:
    def test_small_run(self):
        results = monte_carlo_over_temperature(
            "sstvs", 0.8, 1.2, runs=2, temperatures=(27.0, 60.0))
        assert set(results) == {27.0, 60.0}
        for result in results.values():
            assert result.functional_yield == 1.0
