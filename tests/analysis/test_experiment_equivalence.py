"""Bitwise equivalence of engine-routed drivers vs the legacy loops.

Every refactored driver is pinned against a hand-written serial loop
over the same kernel (``characterize`` / ``quick_delays`` /
``extract_vtc``) — the shape of the code the drivers had before the
unified experiment engine. Workloads are small but real (full solver),
so these tests fail if the engine reorders, re-seeds, or otherwise
perturbs any numeric path. The parallel variants additionally pin
``workers > 1`` to the serial numbers (the satellite requirement for
``temperature``, ``sensitivity``, and ``noise_margin``).
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.montecarlo import MonteCarloConfig, run_monte_carlo
from repro.analysis.sweep import SweepGrid, sweep_delay_surface
from repro.analysis.functional import validate_functionality
from repro.analysis.corners import pvt_report
from repro.analysis.temperature import sweep_temperature
from repro.analysis.sensitivity import metric_sensitivities
from repro.analysis.noise_margin import extract_vtc, vtc_report
from repro.cells.sstvs import SstvsSizing
from repro.core.characterize import (
    StimulusPlan, characterize, characterize_kinds, quick_delays,
)
from repro.core.metrics import METRIC_FIELDS
from repro.pdk import CornerPdk, Pdk
from repro.pdk.variation import VariedPdk, VariationSpec

pytestmark = pytest.mark.experiment

FAST = StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9)


class TestMonteCarloEquivalence:
    def test_bitwise_vs_legacy_loop(self):
        config = MonteCarloConfig(runs=2, seed=97, plan=FAST)
        result = run_monte_carlo("sstvs", 0.8, 1.2, config)

        legacy = []
        for index in range(config.runs):
            rng = np.random.default_rng(
                np.random.SeedSequence([config.seed, index]))
            pdk = VariedPdk(rng, VariationSpec(),
                            temperature_c=config.temperature_c)
            legacy.append(characterize(pdk, "sstvs", 0.8, 1.2,
                                       plan=FAST))
        assert result.samples == legacy


class TestSweepEquivalence:
    def test_bitwise_vs_legacy_loop(self):
        grid = SweepGrid(vddi_values=np.array([0.8, 1.2]),
                         vddo_values=np.array([1.0, 1.4]))
        surface = sweep_delay_surface("sstvs", grid)
        for i, vddi in enumerate(grid.vddi_values):
            for j, vddo in enumerate(grid.vddo_values):
                q = quick_delays(Pdk(), "sstvs", float(vddi), float(vddo))
                assert surface.rise[i, j] == q.delay_rise
                assert surface.fall[i, j] == q.delay_fall
                assert surface.functional[i, j] == q.functional


class TestFunctionalEquivalence:
    def test_bitwise_vs_legacy_loop(self):
        grid = SweepGrid(vddi_values=np.array([0.8, 1.4]),
                         vddo_values=np.array([1.2]))
        report = validate_functionality("sstvs", grid)
        expected_passed = sum(
            quick_delays(Pdk(), "sstvs", float(vi), float(vo)).functional
            for vi in grid.vddi_values for vo in grid.vddo_values)
        assert report.total == 2
        assert report.passed == expected_passed


class TestPvtEquivalence:
    def test_bitwise_vs_legacy_loop(self):
        report = pvt_report("sstvs", 0.8, 1.2, corners=("tt", "ss"),
                            temperatures=(27.0,), plan=FAST)
        legacy = [characterize(CornerPdk(c, temperature_c=27.0), "sstvs",
                               0.8, 1.2, plan=FAST)
                  for c in ("tt", "ss")]
        assert [p.metrics for p in report.points] == legacy
        assert [(p.corner, p.temperature_c) for p in report.points] \
            == [("tt", 27.0), ("ss", 27.0)]


class TestTemperatureEquivalence:
    def test_bitwise_vs_legacy_loop(self):
        points = sweep_temperature("sstvs", 0.8, 1.2,
                                   temperatures=(27.0, 90.0))
        legacy = [characterize(Pdk(temperature_c=t), "sstvs", 0.8, 1.2)
                  for t in (27.0, 90.0)]
        assert [p.metrics for p in points] == legacy

    def test_parallel_identical_to_serial(self):
        serial = sweep_temperature("sstvs", 0.8, 1.2,
                                   temperatures=(27.0, 90.0))
        parallel = sweep_temperature("sstvs", 0.8, 1.2,
                                     temperatures=(27.0, 90.0),
                                     workers=2)
        assert [p.metrics for p in parallel] \
            == [p.metrics for p in serial]


class TestSensitivityEquivalence:
    def test_bitwise_vs_legacy_loop(self):
        result = metric_sensitivities("sstvs", 0.8, 1.2,
                                      knobs=("w_mc",), plan=FAST)
        base = SstvsSizing()
        step = 0.15
        nominal = base.w_mc
        m_up = characterize(Pdk(), "sstvs", 0.8, 1.2, plan=FAST,
                            sizing=replace(base,
                                           w_mc=nominal * (1 + step)))
        m_down = characterize(Pdk(), "sstvs", 0.8, 1.2, plan=FAST,
                              sizing=replace(base,
                                             w_mc=nominal * (1 - step)))
        for metric in METRIC_FIELDS:
            hi, lo = getattr(m_up, metric), getattr(m_down, metric)
            if hi > 0 and lo > 0:
                expected = (math.log(hi / lo)
                            / math.log((1 + step) / (1 - step)))
                assert result["w_mc"].values[metric] == expected
            else:
                assert math.isnan(result["w_mc"].values[metric])

    def test_parallel_identical_to_serial(self):
        serial = metric_sensitivities("sstvs", 0.8, 1.2,
                                      knobs=("w_mc", "w_m1"), plan=FAST)
        parallel = metric_sensitivities("sstvs", 0.8, 1.2,
                                        knobs=("w_mc", "w_m1"),
                                        plan=FAST, workers=2)
        assert parallel == serial


class TestVtcEquivalence:
    def test_bitwise_vs_kernel(self):
        report = vtc_report("sstvs", pairs=((0.8, 1.2),), points=61)
        direct = extract_vtc("sstvs", 0.8, 1.2, points=61)
        vtc = report.results[(0.8, 1.2)]
        assert np.array_equal(vtc.vin, direct.vin)
        assert np.array_equal(vtc.vout, direct.vout)
        assert (vtc.voh, vtc.vol, vtc.vil, vtc.vih,
                vtc.switching_point) \
            == (direct.voh, direct.vol, direct.vil, direct.vih,
                direct.switching_point)

    def test_parallel_identical_to_serial(self):
        pairs = ((0.8, 1.2), (1.2, 0.8))
        serial = vtc_report("inverter", pairs=pairs, points=31)
        parallel = vtc_report("inverter", pairs=pairs, points=31,
                              workers=2)
        for pair in pairs:
            assert np.array_equal(parallel.results[pair].vout,
                                  serial.results[pair].vout)


class TestCharacterizeKindsEquivalence:
    def test_bitwise_vs_direct_calls(self):
        results = characterize_kinds(("inverter", "cvs"), 1.2, 1.2,
                                     plan=FAST)
        assert results["inverter"] == characterize(Pdk(), "inverter",
                                                   1.2, 1.2, plan=FAST)
        assert results["cvs"] == characterize(Pdk(), "cvs", 1.2, 1.2,
                                              plan=FAST)
        assert list(results) == ["inverter", "cvs"]
