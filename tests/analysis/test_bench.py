"""Benchmark harness smoke tests (``pytest -m bench``).

Runs the real suite on tiny workloads — enough to prove the harness
end-to-end (timing, solve counters, parallel-vs-serial identity check,
JSON trajectory, regression guard) without benchmark-scale runtime.
"""

import copy
import json

import pytest

from repro.analysis.bench import (
    BENCH_SCHEMA, BENCH_TRAJECTORY_SCHEMA, PRE_PR2_BASELINE,
    TRACER_OVERHEAD_TOLERANCE, append_trajectory, bench_tracer_overhead,
    check_regression, check_tracer_overhead, latest_entry,
    load_trajectory, run_bench_suite, validate_baseline,
    write_trajectory,
)

pytestmark = pytest.mark.bench


def _record(rate: float) -> dict:
    return {"schema": BENCH_SCHEMA,
            "workloads": {"mc_serial": {"wall_s": 1.0, "solves": 10,
                                        "solves_per_s": rate}},
            "speedups": {}}


class TestTrajectory:
    def test_append_creates_then_extends(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        assert append_trajectory(_record(10.0), path) == 1
        assert append_trajectory(_record(11.0), path) == 2
        stored = load_trajectory(path)
        assert stored["schema"] == BENCH_TRAJECTORY_SCHEMA
        assert len(stored["entries"]) == 2
        assert all("appended_utc" in e for e in stored["entries"])

    def test_append_converts_legacy_single_record(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        write_trajectory(_record(10.0), path)
        assert append_trajectory(_record(12.0), path) == 2
        stored = load_trajectory(path)
        rates = [e["workloads"]["mc_serial"]["solves_per_s"]
                 for e in stored["entries"]]
        assert rates == [10.0, 12.0]

    def test_latest_entry_both_formats(self, tmp_path):
        legacy = _record(10.0)
        assert latest_entry(legacy) is legacy
        path = str(tmp_path / "BENCH.json")
        append_trajectory(_record(10.0), path)
        append_trajectory(_record(12.0), path)
        newest = latest_entry(load_trajectory(path))
        assert newest["workloads"]["mc_serial"]["solves_per_s"] == 12.0

    def test_latest_entry_empty_trajectory_raises(self):
        with pytest.raises(ValueError, match="no entries"):
            latest_entry({"schema": BENCH_TRAJECTORY_SCHEMA,
                          "entries": []})

    def test_check_regression_accepts_trajectories(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        append_trajectory(_record(10.0), path)
        baseline = load_trajectory(path)
        assert check_regression(_record(10.0), baseline) == []
        problems = check_regression(_record(1.0), baseline)
        assert problems and "mc_serial" in problems[0]


class TestValidateBaseline:
    """The ``--check`` baseline guard (satellite: no silent passes)."""

    def test_accepts_valid_trajectory_and_legacy(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        append_trajectory(_record(10.0), path)
        assert validate_baseline(load_trajectory(path)) is None
        assert validate_baseline(_record(10.0)) is None

    def test_rejects_unknown_schema(self):
        problem = validate_baseline({"schema": "repro-bench-v99",
                                     "workloads": {"mc_serial": {}}})
        assert problem is not None
        assert "repro-bench-v99" in problem
        assert "repro bench --out" in problem  # actionable fix

    def test_rejects_schemaless_dict(self):
        # An arbitrary JSON object previously slipped through
        # latest_entry as a "legacy record" with no workloads and
        # compared clean against anything.
        problem = validate_baseline({"results": [1, 2, 3]})
        assert problem is not None and "schema" in problem

    def test_rejects_empty_trajectory(self):
        problem = validate_baseline({"schema": BENCH_TRAJECTORY_SCHEMA,
                                     "entries": []})
        assert problem is not None and "no entries" in problem

    def test_rejects_record_without_workloads(self):
        problem = validate_baseline({"schema": BENCH_SCHEMA})
        assert problem is not None and "workloads" in problem


@pytest.fixture(scope="module")
def suite_record():
    return run_bench_suite(mc_runs=2, sweep_step=0.3, workers=2)


def test_suite_record_shape(suite_record):
    assert suite_record["schema"] == BENCH_SCHEMA
    assert suite_record["baseline_pre_pr2"] == PRE_PR2_BASELINE
    workloads = suite_record["workloads"]
    assert set(workloads) == {"mc_serial", "mc_parallel", "mc_batched",
                              "mc_batched_sharded", "sweep", "tracer",
                              "cache_hit", "sparse_crossover",
                              "floorplan_scale"}
    for record in workloads.values():
        assert record["wall_s"] > 0
    # The floorplan workload times each pipeline stage per size.
    for entry in workloads["floorplan_scale"]["sizes"]:
        assert entry["moves_per_s"] > 0
        assert entry["signoff_s"] > 0
    # Every campaign workload exposes the Newton counters as a rate —
    # pool and sharded workers ship their deltas home.
    assert workloads["mc_serial"]["solves"] > 0
    assert workloads["mc_serial"]["solves_per_s"] > 0
    assert workloads["mc_parallel"]["solves_per_s"] > 0
    assert workloads["mc_batched"]["solves_per_s"] > 0
    assert workloads["mc_batched_sharded"]["solves_per_s"] > 0
    assert workloads["sweep"]["solves_per_s"] > 0
    # Every backend saw the identical workload, so the shipped-home
    # solve counters must agree exactly.
    assert workloads["mc_parallel"]["solves"] \
        == workloads["mc_serial"]["solves"]
    assert workloads["mc_batched_sharded"]["solves"] \
        == workloads["mc_batched"]["solves"]
    # Off-scale runs keep the pre-PR2 headline speedups out, but the
    # in-process ratios and the pool-efficiency guard are valid at any
    # scale.
    assert set(suite_record["speedups"]) == {
        "mc_batched_vs_serial", "mc_batched_sharded_vs_serial",
        "pool_efficiency"}
    assert suite_record["speedups"]["mc_batched_vs_serial"] > 0
    assert suite_record["speedups"]["pool_efficiency"] > 0
    # Constant-work machine price, for reading noisy trajectories.
    assert suite_record["machine"]["lapack_fixed_work_s"] > 0


def test_parallel_identical_to_serial(suite_record):
    assert suite_record["workloads"]["mc_parallel"][
        "identical_to_serial"] is True


def test_batched_identical_to_serial(suite_record):
    assert suite_record["workloads"]["mc_batched"][
        "identical_to_serial"] is True
    assert suite_record["workloads"]["mc_batched"]["backend"] == "batched"


def test_sharded_batched_identical_to_serial(suite_record):
    sharded = suite_record["workloads"]["mc_batched_sharded"]
    assert sharded["identical_to_serial"] is True
    assert sharded["backend"] == "batched"
    assert sharded["workers"] == 2


class TestPoolEfficiency:
    """Machine-independent pool guard (satellite: no raw-wall compare)."""

    def test_suite_value_meets_floor(self, suite_record):
        from repro.analysis.bench import (
            POOL_EFFICIENCY_FLOOR, check_pool_efficiency,
        )
        # The normalized form must hold on ANY machine, including this
        # one: mc_runs=2 maximizes pool overhead per point, so passing
        # here means the floor is genuinely conservative.
        assert check_pool_efficiency(suite_record) == []
        assert suite_record["speedups"]["pool_efficiency"] \
            >= POOL_EFFICIENCY_FLOOR

    def test_guard_flags_poor_scaling(self):
        from repro.analysis.bench import check_pool_efficiency
        bad = {"speedups": {"pool_efficiency": 0.2},
               "workloads": {"mc_parallel": {"workers": 4}}}
        problems = check_pool_efficiency(bad)
        assert len(problems) == 1 and "0.20" in problems[0]
        assert check_pool_efficiency({"speedups": {}}) == []


class TestSparseCrossover:
    def test_record_shape(self, suite_record):
        from repro.spice.sparse import SPARSE_AUTO_THRESHOLD
        record = suite_record["workloads"]["sparse_crossover"]
        assert record["workload"] == "sparse_crossover"
        assert record["auto_threshold"] == SPARSE_AUTO_THRESHOLD
        sizes = record["sizes"]
        assert [s["size"] for s in sizes] \
            == sorted(s["size"] for s in sizes)
        assert sizes[0]["cells"] == 1
        for entry in sizes:
            assert entry["dense_s"] > 0 and entry["sparse_s"] > 0
            assert entry["nnz_factor"] >= entry["size"]
        # The sweep must straddle the auto threshold, or the recorded
        # crossover says nothing about the selection rule.
        assert sizes[0]["size"] < SPARSE_AUTO_THRESHOLD
        assert sizes[-1]["size"] > SPARSE_AUTO_THRESHOLD


def test_trajectory_roundtrip(suite_record, tmp_path):
    path = tmp_path / "BENCH_TEST.json"
    write_trajectory(suite_record, str(path))
    loaded = load_trajectory(str(path))
    assert loaded["schema"] == BENCH_SCHEMA
    assert loaded["workloads"]["mc_serial"]["solves"] \
        == suite_record["workloads"]["mc_serial"]["solves"]
    # The file is plain JSON (no dangling non-serializable values).
    json.dumps(loaded)


class TestTracerOverhead:
    def test_null_tracer_within_bound(self):
        record = bench_tracer_overhead(solves=120, repeats=3)
        assert record["disabled_solve_s"] > 0
        # The hard acceptance bound: an ambient NullTracer may cost at
        # most 2% over the disabled hot path. The median-of-interleaved
        # estimator is noise-robust, but grant the same margin again
        # for CI machines under load.
        assert record["null_overhead"] <= 2 * TRACER_OVERHEAD_TOLERANCE
        assert check_tracer_overhead(
            {"workloads": {"tracer": record}},
            tolerance=2 * TRACER_OVERHEAD_TOLERANCE) == []

    def test_guard_flags_excess_overhead(self):
        fat = {"workloads": {"tracer": {"null_overhead": 0.50}}}
        problems = check_tracer_overhead(fat)
        assert len(problems) == 1 and "NullTracer" in problems[0]
        assert check_tracer_overhead({"workloads": {}}) == []

    def test_suite_embeds_tracer_workload(self, suite_record):
        tracer = suite_record["workloads"]["tracer"]
        assert tracer["workload"] == "tracer"
        assert tracer["null_overhead"] is not None
        assert tracer["collecting_overhead"] > tracer["null_overhead"]


def test_regression_guard(suite_record):
    assert check_regression(suite_record, suite_record) == []
    slower = copy.deepcopy(suite_record)
    rate = slower["workloads"]["mc_serial"]["solves_per_s"]
    slower["workloads"]["mc_serial"]["solves_per_s"] = rate * 0.5
    problems = check_regression(slower, suite_record)
    assert len(problems) == 1 and "mc_serial" in problems[0]
    within = copy.deepcopy(suite_record)
    within["workloads"]["mc_serial"]["solves_per_s"] = rate * 0.8
    assert check_regression(within, suite_record) == []


class TestCacheHitWorkload:
    def test_record_shape_and_guarantee(self):
        from repro.analysis.bench import bench_cache_hit

        record = bench_cache_hit(runs=2)
        assert record["workload"] == "cache_hit"
        assert record["runs"] == 2
        assert record["cold_wall_s"] > 0
        assert record["warm_wall_s"] > 0
        # Cold pass: every point misses then stores; warm pass: every
        # point is served from the cache without touching the solver.
        assert record["misses"] == 2 and record["stores"] == 2
        assert record["hits"] == 2
        assert record["warm_hit_rate"] == 1.0
        assert record["corruptions"] == 0
        assert record["warm_speedup"] > 1.0
        assert record["warm_identical_to_cold"] is True
        assert record["solves_per_s"] > 0  # cold-pass solve rate

    def test_suite_embeds_cache_workload(self, suite_record):
        cached = suite_record["workloads"]["cache_hit"]
        assert cached["workload"] == "cache_hit"
        assert cached["warm_identical_to_cold"] is True
        assert cached["warm_hit_rate"] == 1.0
