"""The cell registry: registration, dispatch, dynamic errors."""

import pytest

from repro.cells import registry as cell_registry
from repro.cells.registry import (
    CellSpec, add_select_sources, build_dut, cell_names,
    dut_is_inverting, get_cell, register_cell,
)
from repro.cells.sstvs import add_sstvs
from repro.core import testbench
from repro.core.shifter import LevelShifter
from repro.errors import AnalysisError
from repro.pdk import Pdk
from repro.spice import Circuit
from repro.spice.devices import VoltageSource
from repro.spice.devices.mosfet import Mosfet

ZOO = ("sstvs", "combined", "inverter", "ssvs_khan", "ssvs_puri",
       "cvs", "lpls_split", "lpls_pass", "ulpls")


def _noop_build(circuit, pdk, name, inp, out, vddo, vddi, sizing):
    return {}


class TestRegistration:
    def test_builtin_zoo_registered(self):
        for kind in ZOO:
            assert kind in cell_names()

    def test_unknown_kind_error_lists_live_registry(self):
        with pytest.raises(AnalysisError) as err:
            get_cell("warp")
        message = str(err.value)
        assert "warp" in message
        for kind in ZOO:
            assert kind in message

    def test_duplicate_registration_guard(self):
        spec = get_cell("sstvs")
        with pytest.raises(AnalysisError):
            register_cell(spec)
        assert register_cell(spec, replace=True) is spec

    def test_late_registered_cell_appears_everywhere(self):
        register_cell(CellSpec(name="testcell", build=_noop_build))
        try:
            assert get_cell("testcell").build is _noop_build
            # Dynamic error listing picks it up...
            with pytest.raises(AnalysisError) as err:
                get_cell("nonesuch")
            assert "testcell" in str(err.value)
            # ...and so does the testbench's KINDS view.
            assert "testcell" in testbench.KINDS
        finally:
            del cell_registry._CELLS["testcell"]
        assert "testcell" not in testbench.KINDS


class TestDispatch:
    def test_build_dut_matches_native_builder(self):
        pdk = Pdk()
        via_registry = Circuit("reg")
        build_dut(via_registry, pdk, "sstvs", "in", "out", "vddo",
                  "vddi")
        native = Circuit("nat")
        add_sstvs(native, pdk, "dut", "in", "out", "vddo")
        reg_devices = sorted(via_registry.devices)
        assert reg_devices == sorted(native.devices)
        count = sum(1 for d in via_registry.devices.values()
                    if isinstance(d, Mosfet))
        assert count == get_cell("sstvs").device_count

    def test_device_counts_are_honest(self):
        pdk = Pdk()
        for kind in ZOO:
            circuit = Circuit(f"count_{kind}")
            circuit.add(VoltageSource("vdd", "vddo", "0", dc=1.2))
            circuit.add(VoltageSource("vdi", "vddi", "0", dc=0.8))
            circuit.add(VoltageSource("vin", "in", "0", dc=0.8))
            build_dut(circuit, pdk, kind, "in", "out", "vddo", "vddi")
            count = sum(1 for d in circuit.devices.values()
                        if isinstance(d, Mosfet))
            assert count == get_cell(kind).device_count, kind

    def test_polarity_flags(self):
        assert dut_is_inverting("sstvs")
        assert dut_is_inverting("ulpls")
        assert not dut_is_inverting("cvs")
        assert not dut_is_inverting("lpls_split")

    def test_select_sources_only_for_combined(self):
        for kind in ZOO:
            circuit = Circuit(f"sel_{kind}")
            added = add_select_sources(circuit, kind, 0.8, 1.2)
            assert added == (kind == "combined")
            assert ("vsel" in circuit.devices) == added

    def test_select_levels_follow_shift_direction(self):
        spec = get_cell("combined")
        # Up-shift: route through the SS-VS path (sel = VDDO).
        assert spec.select_levels(0.8, 1.2) == (1.2, 0.0)
        # Down-shift: the inverter path (sel = 0).
        assert spec.select_levels(1.2, 0.8) == (0.0, 0.8)


class TestConsumers:
    def test_level_shifter_rejects_unknown_kind_with_listing(self):
        with pytest.raises(AnalysisError) as err:
            LevelShifter("warp", 0.8, 1.2)
        assert "sstvs" in str(err.value)

    def test_testbench_kinds_is_the_registry_view(self):
        assert tuple(testbench.KINDS) == cell_names()

    def test_specs_carry_provenance(self):
        for kind in ZOO:
            spec = get_cell(kind)
            assert spec.provenance, kind
            assert spec.description, kind
