"""Registry round trips: every cell, both nodes, cache and batch.

The acceptance bar for the plugin registries: each registered cell
characterizes end-to-end on each registered node, a cache-served
re-run is bitwise the live run, and the batched SPMD path agrees with
the serial path to 0 ULP for the new topologies.
"""

import pytest

from repro.cells.registry import cell_names
from repro.core.characterize import (
    StimulusPlan, characterize, characterize_batch, characterize_kinds,
)
from repro.core.metrics import METRIC_FIELDS
from repro.pdk import make_pdk
from repro.pdk.registry import get_node, node_names
from repro.runtime.cache import SolveCache

NEW_TOPOLOGIES = ("lpls_split", "lpls_pass", "ulpls")


def _bitwise_equal(a, b):
    for name in METRIC_FIELDS:
        if getattr(a, name).hex() != getattr(b, name).hex():
            return False
    return a.functional == b.functional


@pytest.mark.integration
@pytest.mark.parametrize("node", ["ptm90", "lv22"])
def test_every_cell_characterizes_and_recaches_bitwise(node, tmp_path):
    vddi, vddo = get_node(node).default_pair
    cache = SolveCache(tmp_path / "cache")
    live = characterize_kinds(cell_names(), vddi, vddo,
                              pdk=make_pdk(node), cache=cache)
    assert set(live) == set(cell_names())
    for kind, metrics in live.items():
        assert metrics.functional, f"{kind}@{node} is not functional"
    assert cache.stats.misses > 0

    cached = characterize_kinds(cell_names(), vddi, vddo,
                                pdk=make_pdk(node), cache=cache)
    assert cache.stats.hits >= len(cell_names())
    for kind in cell_names():
        assert _bitwise_equal(live[kind], cached[kind]), (
            f"cache-served {kind}@{node} differs from the live solve")


@pytest.mark.batch
@pytest.mark.parametrize("node", ["ptm90", "lv22"])
@pytest.mark.parametrize("kind", NEW_TOPOLOGIES)
def test_new_topologies_batched_equals_serial_bitwise(node, kind):
    spec = get_node(node)
    vddi, vddo = spec.default_pair
    plan = StimulusPlan()
    pairs = [(vddi, vddo), (round(vddi + 0.05, 3), vddo)]
    lanes = [(make_pdk(node), kind, a, b, plan, 1e-15, None, 1.0)
             for a, b in pairs]
    batched = characterize_batch(lanes)
    for (a, b), lane_metrics in zip(pairs, batched):
        serial = characterize(make_pdk(node), kind, a, b, plan=plan)
        assert _bitwise_equal(serial, lane_metrics), (
            f"batched {kind}@{node} ({a} -> {b} V) differs from serial")
