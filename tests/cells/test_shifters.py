"""Static and structural tests for every level-shifter cell.

Full dynamic characterization lives in tests/core and the integration
suite; here we verify DC truth tables (via the reset-pulse stimulus to
avoid metastable DC solutions), internal node levels, and structural
properties like device flavors.
"""

import pytest

from repro.cells import add_cvs, add_sstvs
from repro.cells.sstvs import SstvsSizing
from repro.core.characterize import StimulusPlan, run_stimulus
from repro.pdk import HIGH_VT, LOW_VT, Pdk
from repro.spice import Circuit, OperatingPoint
from repro.spice.devices import VoltageSource

FAST_PLAN = StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9)


class TestSstvsStructure:
    def _cell(self, pdk, sizing=None):
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0))
        devices = add_sstvs(ckt, pdk, "dut", "in", "out", "vdd",
                            sizing=sizing)
        return ckt, devices

    def test_device_inventory(self, pdk):
        ckt, devices = self._cell(pdk)
        for key in ("m1", "m2", "m3", "m4", "m5", "m6", "m7", "m8",
                    "mc", "nor_mp_a", "nor_mp_b", "nor_mn_a",
                    "nor_mn_b"):
            assert key in devices, f"missing {key}"

    def test_high_vt_devices_per_paper(self, pdk):
        # Section 3: M4 and M6 are high-Vt, M8 is low-Vt, others nominal.
        ckt, devices = self._cell(pdk)
        assert ckt.device(devices["m4"]).params.vto == pytest.approx(
            pdk.card("n", HIGH_VT).vto)
        assert ckt.device(devices["m6"]).params.vto == pytest.approx(
            pdk.card("n", HIGH_VT).vto)
        assert ckt.device(devices["m8"]).params.vto == pytest.approx(
            pdk.card("n", LOW_VT).vto)
        assert ckt.device(devices["m1"]).params.vto == pytest.approx(
            pdk.card("n").vto)

    def test_all_pmos_bulks_on_vddo(self, pdk):
        # The paper: "all PMOS devices in this figure have substrate
        # connected to VDDO" — mandatory for a single-supply cell.
        ckt, devices = self._cell(pdk)
        from repro.spice.devices import Mosfet
        for device in ckt.devices_of_type(Mosfet):
            if device.params.polarity == "p":
                assert device.nodes[3] == "vdd", device.name

    def test_m1_source_is_input(self, pdk):
        # M1 dumps node2's charge into the input node (paper Section 3).
        ckt, devices = self._cell(pdk)
        m1 = ckt.device(devices["m1"])
        assert m1.nodes[2] == "in"
        assert m1.nodes[1].endswith("ctrl")

    def test_flavor_override_hook(self, pdk):
        sizing = SstvsSizing(flavor_overrides={"m4": "nominal"})
        ckt, devices = self._cell(pdk, sizing)
        assert ckt.device(devices["m4"]).params.vto == pytest.approx(
            pdk.card("n").vto)

    def test_mc_is_gate_capacitor(self, pdk):
        ckt, devices = self._cell(pdk)
        mc = ckt.device(devices["mc"])
        # Drain, source, bulk all grounded; gate on ctrl.
        assert mc.nodes[0] == "0"
        assert mc.nodes[2] == "0"
        assert mc.nodes[3] == "0"
        assert mc.nodes[1].endswith("ctrl")


class TestSstvsStates:
    @pytest.mark.parametrize("vddi,vddo", [(0.8, 1.2), (1.2, 0.8),
                                           (1.0, 1.0)])
    def test_static_levels_both_directions(self, pdk, vddi, vddo):
        result, probes = run_stimulus(pdk, "sstvs", vddi, vddo, FAST_PLAN)
        out = result.wave(probes.out_node)
        t_high = FAST_PLAN.t_rise_a - 30e-12   # input low here
        t_low = FAST_PLAN.t_fall_b - 30e-12    # input high here
        assert out.value_at(t_high) == pytest.approx(vddo, abs=0.06)
        assert out.value_at(t_low) == pytest.approx(0.0, abs=0.06)

    def test_node2_tracks_input_high(self, pdk):
        result, probes = run_stimulus(pdk, "sstvs", 0.8, 1.2, FAST_PLAN)
        node2 = result.wave(probes.internal["nodes"]["node2"])
        t_low = FAST_PLAN.t_fall_b - 30e-12
        # With the input high, node2 must sit at full VDDO — this is
        # what kills the NOR's partial-PMOS leakage path.
        assert node2.value_at(t_low) == pytest.approx(1.2, abs=0.05)

    def test_ctrl_below_input_high_level(self, pdk):
        # M1 must never turn on while the input is high: ctrl stays a
        # threshold below the input's high level or below ~VDDO - Vt.
        for vddi, vddo in ((0.8, 1.2), (1.2, 0.8), (0.8, 1.4)):
            result, probes = run_stimulus(pdk, "sstvs", vddi, vddo,
                                          FAST_PLAN)
            ctrl = result.wave(probes.internal["nodes"]["ctrl"])
            t_low = FAST_PLAN.t_fall_b - 30e-12
            margin = ctrl.value_at(t_low) - vddi
            assert margin < 0.37, (vddi, vddo, margin)

    def test_equal_rails_still_shift(self, pdk):
        result, probes = run_stimulus(pdk, "sstvs", 1.2, 1.2, FAST_PLAN)
        out = result.wave(probes.out_node)
        assert out.value_at(FAST_PLAN.t_rise_a - 30e-12) == \
            pytest.approx(1.2, abs=0.06)


class TestCvs:
    def test_non_inverting_truth_table(self, pdk):
        for vin, expected in ((0.0, 0.0), (0.8, 1.2)):
            ckt = Circuit("t")
            ckt.add(VoltageSource("vddi", "vddi", "0", dc=0.8))
            ckt.add(VoltageSource("vddo", "vddo", "0", dc=1.2))
            ckt.add(VoltageSource("vin", "in", "0", dc=vin))
            add_cvs(ckt, pdk, "dut", "in", "out", "vddi", "vddo")
            op = OperatingPoint(ckt).run()
            assert op["out"] == pytest.approx(expected, abs=0.05)

    def test_requires_both_supplies(self, pdk):
        # Structural: the CVS references two distinct supply nodes.
        ckt = Circuit("t")
        ckt.add(VoltageSource("vddi", "vddi", "0", dc=0.8))
        ckt.add(VoltageSource("vddo", "vddo", "0", dc=1.2))
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0))
        devices = add_cvs(ckt, pdk, "dut", "in", "out", "vddi", "vddo")
        from repro.spice.devices import Mosfet
        nodes = set()
        for device in ckt.devices_of_type(Mosfet):
            nodes.update(device.nodes)
        assert "vddi" in nodes and "vddo" in nodes


class TestSsvsKhan:
    def test_inverting_levels_low_to_high(self, pdk):
        result, probes = run_stimulus(pdk, "ssvs_khan", 0.8, 1.2,
                                      FAST_PLAN)
        out = result.wave(probes.out_node)
        assert out.value_at(FAST_PLAN.t_rise_a - 30e-12) == \
            pytest.approx(1.2, abs=0.06)
        assert out.value_at(FAST_PLAN.t_fall_b - 30e-12) == \
            pytest.approx(0.0, abs=0.06)

    def test_virtual_rail_restored_when_input_low(self, pdk):
        result, probes = run_stimulus(pdk, "ssvs_khan", 0.8, 1.2,
                                      FAST_PLAN)
        vvdd = result.wave(probes.internal["nodes"]["vvdd"])
        # Keeper on: full rail while input is low...
        assert vvdd.value_at(FAST_PLAN.t_rise_a - 30e-12) == \
            pytest.approx(1.2, abs=0.08)
        # ...and dropped (by the low-Vt diode's follower drop) while
        # the input is high.
        assert vvdd.value_at(FAST_PLAN.t_fall_b - 30e-12) < 1.15


class TestSsvsPuri:
    def test_functional_low_to_high(self, pdk):
        result, probes = run_stimulus(pdk, "ssvs_puri", 0.8, 1.2,
                                      FAST_PLAN)
        out = result.wave(probes.out_node)
        assert out.value_at(FAST_PLAN.t_rise_a - 30e-12) == \
            pytest.approx(1.2, abs=0.06)
        assert out.value_at(FAST_PLAN.t_fall_b - 30e-12) == \
            pytest.approx(0.0, abs=0.06)


class TestCombinedVs:
    @pytest.mark.parametrize("vddi,vddo", [(0.8, 1.2), (1.2, 0.8)])
    def test_levels_both_directions(self, pdk, vddi, vddo):
        result, probes = run_stimulus(pdk, "combined", vddi, vddo,
                                      FAST_PLAN)
        out = result.wave(probes.out_node)
        assert out.value_at(FAST_PLAN.t_rise_a - 30e-12) == \
            pytest.approx(vddo, abs=0.06)
        assert out.value_at(FAST_PLAN.t_fall_b - 30e-12) == \
            pytest.approx(0.0, abs=0.06)

    def test_has_control_inputs(self, pdk):
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0))
        ckt.add(VoltageSource("vs", "sel", "0", dc=1.2))
        ckt.add(VoltageSource("vsb", "selb", "0", dc=0.0))
        from repro.cells import add_combined_vs
        add_combined_vs(ckt, pdk, "dut", "in", "out", "vdd", "sel",
                        "selb")
        ckt.finalize()
        assert "sel" in ckt.node_names()
