"""Static (DC truth-table) tests for the primitive gate cells."""

import pytest

from repro.cells import (
    add_inverter, add_mux2, add_nand2, add_nor2, add_transmission_gate,
)
from repro.spice import Circuit, OperatingPoint
from repro.spice.devices import VoltageSource

VDD = 1.2


def _static(pdk, builder, inputs, probe, **kwargs):
    """Build one gate with DC inputs; return the probe-node voltage."""
    ckt = Circuit("gate")
    ckt.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
    for name, level in inputs.items():
        ckt.add(VoltageSource(f"v_{name}", name, "0", dc=level))
    builder(ckt, pdk, "g", **kwargs)
    op = OperatingPoint(ckt).run()
    return op[probe]


class TestInverter:
    @pytest.mark.parametrize("vin,expected", [(0.0, VDD), (VDD, 0.0)])
    def test_truth_table(self, pdk, vin, expected):
        out = _static(pdk, add_inverter, {"a": vin}, "out",
                      inp="a", out="out", vdd="vdd")
        assert out == pytest.approx(expected, abs=0.02)

    def test_returns_device_names(self, pdk):
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0))
        devices = add_inverter(ckt, pdk, "inv", "in", "out", "vdd")
        assert set(devices) == {"mn", "mp"}
        assert "inv.mn" in ckt


class TestNor2:
    @pytest.mark.parametrize("a,b,expected", [
        (0.0, 0.0, VDD),
        (VDD, 0.0, 0.0),
        (0.0, VDD, 0.0),
        (VDD, VDD, 0.0),
    ])
    def test_truth_table(self, pdk, a, b, expected):
        out = _static(pdk, add_nor2, {"a": a, "b": b}, "out",
                      in_a="a", in_b="b", out="out", vdd="vdd")
        assert out == pytest.approx(expected, abs=0.02)

    def test_in_driven_pmos_adjacent_to_output(self, pdk):
        # The stack order matters for the SS-TVS leakage story: the
        # in_a device must connect to the output node.
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        ckt.add(VoltageSource("va", "a", "0", dc=0.0))
        ckt.add(VoltageSource("vb", "b", "0", dc=0.0))
        add_nor2(ckt, pdk, "g", "a", "b", "out", "vdd")
        mp_a = ckt.device("g.mp_a")
        assert "out" in mp_a.nodes
        mp_b = ckt.device("g.mp_b")
        assert "vdd" in mp_b.nodes


class TestNand2:
    @pytest.mark.parametrize("a,b,expected", [
        (0.0, 0.0, VDD),
        (VDD, 0.0, VDD),
        (0.0, VDD, VDD),
        (VDD, VDD, 0.0),
    ])
    def test_truth_table(self, pdk, a, b, expected):
        out = _static(pdk, add_nand2, {"a": a, "b": b}, "out",
                      in_a="a", in_b="b", out="out", vdd="vdd")
        assert out == pytest.approx(expected, abs=0.02)


class TestTransmissionGate:
    def test_passes_when_enabled(self, pdk):
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        ckt.add(VoltageSource("vin", "a", "0", dc=0.7))
        ckt.add(VoltageSource("ven", "en", "0", dc=VDD))
        ckt.add(VoltageSource("venb", "enb", "0", dc=0.0))
        add_transmission_gate(ckt, pdk, "tg", "a", "b", "en", "enb",
                              "vdd")
        op = OperatingPoint(ckt).run()
        assert op["b"] == pytest.approx(0.7, abs=0.02)

    def test_blocks_when_disabled(self, pdk):
        from repro.spice.devices import Resistor
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        ckt.add(VoltageSource("vin", "a", "0", dc=1.0))
        ckt.add(VoltageSource("ven", "en", "0", dc=0.0))
        ckt.add(VoltageSource("venb", "enb", "0", dc=VDD))
        ckt.add(Resistor("rpull", "b", "0", 1e8))
        add_transmission_gate(ckt, pdk, "tg", "a", "b", "en", "enb",
                              "vdd")
        op = OperatingPoint(ckt).run()
        # Off TG: only leakage reaches node b through 100 MOhm.
        assert op["b"] < 0.4


class TestMux2:
    def _mux_output(self, pdk, sel, in0=0.3, in1=0.9):
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        ckt.add(VoltageSource("v0", "a", "0", dc=in0))
        ckt.add(VoltageSource("v1", "b", "0", dc=in1))
        ckt.add(VoltageSource("vs", "sel", "0", dc=VDD if sel else 0.0))
        ckt.add(VoltageSource("vsb", "selb", "0", dc=0.0 if sel else VDD))
        add_mux2(ckt, pdk, "mux", "a", "b", "sel", "selb", "out", "vdd")
        return OperatingPoint(ckt).run()["out"]

    def test_selects_in1_when_high(self, pdk):
        assert self._mux_output(pdk, sel=True) == pytest.approx(0.9,
                                                                abs=0.02)

    def test_selects_in0_when_low(self, pdk):
        assert self._mux_output(pdk, sel=False) == pytest.approx(0.3,
                                                                 abs=0.02)
