"""Solve cache: content keys, atomic commits, corruption quarantine."""

import json
import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.runtime.cache import (
    ENTRY_SCHEMA, CacheStats, LockTimeout, SolveCache, as_cache,
    cache_key, canonical, canonical_blob, experiment_point_key,
    process_start_time, _lock_is_stale,
)
from repro.runtime.experiment import (
    ExperimentPoint, ExperimentSpec, run_experiment,
)
from repro.runtime.faults import FaultPlan, FaultSpec, inject


def square(x):
    """Module-level measurement (picklable for worker pools)."""
    return x * x


_TRACKED_CALLS = []


def tracked_square(x):
    _TRACKED_CALLS.append(x)
    return x * x


def _spec(measure=square, n=4, **overrides):
    points = [ExperimentPoint(i, float(i)) for i in range(n)]
    options = {"name": "cache-unit", "measure": measure, "points": points,
               "codec": "json"}
    options.update(overrides)
    return ExperimentSpec(**options)


@dataclass
class Knob:
    width: float
    length: float


class TestCanonical:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert canonical(value) == value

    def test_tuples_and_lists_merge(self):
        assert canonical((1, 2)) == canonical([1, 2]) == [1, 2]

    def test_dict_key_order_is_irrelevant(self):
        assert canonical_blob({"a": 1, "b": 2}) \
            == canonical_blob({"b": 2, "a": 1})

    def test_dataclass_is_type_tagged(self):
        blob = canonical(Knob(width=1.0, length=2.0))
        assert blob["__dataclass__"].endswith("Knob")
        assert blob["fields"] == {"width": 1.0, "length": 2.0}

    def test_numpy_scalars_and_arrays(self):
        assert canonical(np.float64(0.5)) == 0.5
        blob = canonical(np.arange(4.0).reshape(2, 2))
        assert blob["__ndarray__"] == [2, 2]
        assert blob["values"] == [0.0, 1.0, 2.0, 3.0]

    def test_unknown_types_fall_back_to_tagged_repr(self):
        blob = canonical(complex(1, 2))
        assert blob["__repr__"].endswith("complex")

    def test_float_blob_is_repr_shortest(self):
        assert canonical_blob(0.1) == "0.1"


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key(a=1, b="x") == cache_key(a=1, b="x")

    def test_sensitive_to_any_component(self):
        base = cache_key(a=1, b="x")
        assert cache_key(a=2, b="x") != base
        assert cache_key(a=1, b="y") != base
        assert cache_key(a=1, b="x", c=0) != base

    def test_point_key_ignores_execution_knobs(self):
        serial = _spec(workers=1)
        pooled = _spec(workers=4, chunk_size=2)
        key = experiment_point_key(serial, 1.0)
        assert experiment_point_key(pooled, 1.0) == key

    def test_point_key_tracks_payload_inputs(self):
        spec = _spec()
        key = experiment_point_key(spec, 1.0)
        assert experiment_point_key(spec, 2.0) != key
        other_codec = _spec(codec="none")
        assert experiment_point_key(other_codec, 1.0) != key


class TestGetPut:
    def test_round_trip(self, tmp_path):
        cache = SolveCache(tmp_path)
        key = cache_key(x=1)
        assert cache.get(key) == (False, None)
        assert cache.put(key, {"delay": 1.25e-9})
        assert cache.get(key) == (True, {"delay": 1.25e-9})
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_entry_is_sharded_and_checksummed(self, tmp_path):
        cache = SolveCache(tmp_path)
        key = cache_key(x=2)
        cache.put(key, [1.0, 2.0])
        path = cache.entry_path(key)
        assert path.parent.name == key[:2]
        entry = json.loads(path.read_text())
        assert entry["schema"] == ENTRY_SCHEMA
        assert entry["key"] == key
        assert entry["checksum"]

    def test_read_only_never_writes(self, tmp_path):
        writer = SolveCache(tmp_path)
        key = cache_key(x=3)
        writer.put(key, 9.0)
        reader = SolveCache(tmp_path, read_only=True)
        assert reader.get(key) == (True, 9.0)
        assert not reader.put(cache_key(x=4), 16.0)
        assert reader.entry_count() == 1

    def test_as_cache_coercion(self, tmp_path):
        assert as_cache(None) is None
        cache = SolveCache(tmp_path)
        assert as_cache(cache) is cache
        assert isinstance(as_cache(str(tmp_path)), SolveCache)


def _tamper_value(cache, key) -> None:
    """Modify an entry's payload while keeping it valid JSON.

    Leaves the stored checksum untouched, so only checksum
    verification — not JSON parsing — can catch the tampering.
    """
    path = cache.entry_path(key)
    entry = json.loads(path.read_text())
    entry["value"] = entry["value"] + 1.0
    path.write_text(json.dumps(entry, sort_keys=True))


class TestCorruption:
    def test_corrupt_entry_is_quarantined_not_served(self, tmp_path):
        cache = SolveCache(tmp_path)
        key = cache_key(x=5)
        cache.put(key, 25.0)
        _tamper_value(cache, key)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            hit, payload = cache.get(key)
        assert not hit and payload is None
        assert cache.stats.corruptions == 1
        assert not cache.entry_path(key).exists()
        assert (tmp_path / "quarantine" / f"{key}.json").is_file()

    def test_recompute_heals_the_entry(self, tmp_path):
        cache = SolveCache(tmp_path)
        key = cache_key(x=6)
        cache.put(key, 36.0)
        _tamper_value(cache, key)
        with pytest.warns(RuntimeWarning):
            cache.get(key)
        assert cache.put(key, 36.0)
        assert cache.get(key) == (True, 36.0)

    def test_unparseable_entry_is_corrupt(self, tmp_path):
        cache = SolveCache(tmp_path)
        key = cache_key(x=7)
        cache.put(key, 49.0)
        cache.entry_path(key).write_text('{"schema": "repro-cache')
        with pytest.warns(RuntimeWarning):
            assert cache.get(key) == (False, None)

    def test_wrong_key_entry_is_corrupt(self, tmp_path):
        """An entry copied/renamed to the wrong key must not alias."""
        cache = SolveCache(tmp_path)
        source, target = cache_key(x=8), cache_key(x=9)
        cache.put(source, 64.0)
        cache.entry_path(target).parent.mkdir(parents=True, exist_ok=True)
        cache.entry_path(target).write_text(
            cache.entry_path(source).read_text())
        with pytest.warns(RuntimeWarning):
            assert cache.get(target) == (False, None)
        assert cache.get(source) == (True, 64.0)

    def test_negative_control_without_checksums(self, tmp_path):
        """Disabling verification serves the tampered payload.

        The chaos harness's negative control: this proves the checksum
        is load-bearing — were it not verified, campaigns would consume
        corrupt results silently.
        """
        cache = SolveCache(tmp_path, verify_checksums=False)
        key = cache_key(x=10)
        cache.put(key, 100.0)
        _tamper_value(cache, key)
        hit, payload = cache.get(key)
        assert hit and payload == 101.0  # corruption served undetected


class TestTornWrite:
    def test_injected_torn_write_leaves_no_visible_entry(self, tmp_path):
        cache = SolveCache(tmp_path)
        key = cache_key(x=11)
        with inject(FaultPlan([FaultSpec("cache_torn_write")])):
            assert not cache.put(key, 121.0)
        assert cache.get(key) == (False, None)
        report = cache.verify()
        assert report["entries"] == 0
        assert report["stray_tmp"] == 1
        # The sweep removed the stray temp file.
        assert cache.verify()["stray_tmp"] == 0

    def test_injected_corruption_detected_on_read(self, tmp_path):
        cache = SolveCache(tmp_path)
        key = cache_key(x=12)
        with inject(FaultPlan([FaultSpec("cache_corrupt")])):
            cache.put(key, 144.0)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key) == (False, None)


class TestDegradedMode:
    def test_write_failure_degrades_not_raises(self, tmp_path):
        blocker = tmp_path / "cache-root"
        blocker.write_text("a file where the cache root should be")
        cache = SolveCache(blocker)
        with pytest.warns(RuntimeWarning, match="degraded"):
            assert not cache.put(cache_key(x=13), 1.0)
        assert cache.degraded
        assert cache.get(cache_key(x=13)) == (False, None)
        assert cache.stats.errors == 1

    def test_degraded_cache_bypasses_lookups(self, tmp_path):
        cache = SolveCache(tmp_path)
        key = cache_key(x=14)
        cache.put(key, 196.0)
        cache.degraded = True
        assert cache.get(key) == (False, None)
        assert not cache.put(cache_key(x=15), 1.0)


class TestLocking:
    def test_unparseable_lock_is_stale(self, tmp_path):
        lock = tmp_path / ".lock"
        lock.write_text("not json")
        assert _lock_is_stale(lock)

    def test_dead_pid_lock_is_stale(self, tmp_path):
        lock = tmp_path / ".lock"
        # Find a vacant pid (sequentially near the max makes it cheap).
        pid = 2 ** 22 - 7
        while os.path.exists(f"/proc/{pid}"):  # pragma: no cover
            pid -= 1
        lock.write_text(json.dumps({"pid": pid}))
        assert _lock_is_stale(lock)

    def test_live_pid_with_matching_start_time_is_held(self, tmp_path):
        lock = tmp_path / ".lock"
        lock.write_text(json.dumps({
            "pid": os.getpid(),
            "start_time": process_start_time(os.getpid())}))
        assert not _lock_is_stale(lock)

    def test_pid_reuse_detected_via_start_time(self, tmp_path):
        lock = tmp_path / ".lock"
        lock.write_text(json.dumps({"pid": os.getpid(),
                                    "start_time": -1}))
        assert _lock_is_stale(lock)

    def test_stale_lock_fault_is_reclaimed(self, tmp_path):
        cache = SolveCache(tmp_path)
        key = cache_key(x=16)
        with inject(FaultPlan([FaultSpec("stale_lock")])):
            assert cache.put(key, 256.0)
        assert cache.get(key) == (True, 256.0)
        assert not cache.lock_path.exists()

    def test_live_lock_times_out_into_degraded_mode(self, tmp_path):
        cache = SolveCache(tmp_path, lock_timeout_s=0.05,
                          lock_poll_s=0.01)
        cache.root.mkdir(parents=True, exist_ok=True)
        cache.lock_path.write_text(json.dumps({
            "pid": os.getpid(),
            "start_time": process_start_time(os.getpid())}))
        with pytest.warns(RuntimeWarning, match="degraded"):
            assert not cache.put(cache_key(x=17), 1.0)
        assert cache.degraded

    def test_lock_timeout_is_an_analysis_error(self):
        from repro.errors import AnalysisError
        assert issubclass(LockTimeout, AnalysisError)


class TestMaintenance:
    def test_verify_counts_and_clear(self, tmp_path):
        cache = SolveCache(tmp_path)
        for n in range(3):
            cache.put(cache_key(x=100 + n), float(n))
        _tamper_value(cache, cache_key(x=100))
        with pytest.warns(RuntimeWarning):
            report = cache.verify()
        assert report["entries"] == 3
        assert report["ok"] == 2
        assert report["corrupt"] == 1
        assert report["quarantined_total"] == 1
        assert cache.entry_count() == 2
        assert cache.total_bytes() > 0
        assert cache.clear() == 2
        assert cache.entry_count() == 0

    def test_stats_to_json(self):
        stats = CacheStats(hits=3, misses=1)
        blob = stats.to_json()
        assert blob["hits"] == 3 and blob["misses"] == 1


class TestEngineIntegration:
    def test_cold_run_populates_warm_run_hits(self, tmp_path):
        cache = SolveCache(tmp_path)
        cold = run_experiment(_spec(), cache=cache)
        assert cache.stats.stores == 4
        warm = run_experiment(_spec(), cache=cache)
        assert cache.stats.hits == 4
        assert warm.values() == cold.values()

    def test_warm_run_does_not_measure(self, tmp_path):
        cache = SolveCache(tmp_path)
        _TRACKED_CALLS.clear()
        run_experiment(_spec(measure=tracked_square), cache=cache)
        assert len(_TRACKED_CALLS) == 4
        _TRACKED_CALLS.clear()
        run_experiment(_spec(measure=tracked_square), cache=cache)
        assert _TRACKED_CALLS == []

    def test_cache_accepts_plain_path(self, tmp_path):
        cold = run_experiment(_spec(), cache=tmp_path / "c")
        warm_cache = SolveCache(tmp_path / "c")
        warm = run_experiment(_spec(), cache=warm_cache)
        assert warm_cache.stats.hits == 4
        assert warm.values() == cold.values()

    def test_quarantined_points_are_not_cached(self, tmp_path):
        def sometimes(x):
            raise ValueError("no")

        cache = SolveCache(tmp_path)
        spec = _spec()
        spec.measure = sometimes
        run_experiment(spec, cache=cache)
        assert cache.stats.stores == 0

    def test_fault_campaigns_bypass_the_cache(self, tmp_path):
        cache = SolveCache(tmp_path)
        run_experiment(_spec(), cache=cache)  # populate
        plan = FaultPlan.fail_samples([1])
        faulted = run_experiment(_spec(faults=plan), cache=cache)
        # The faulted campaign must re-measure (plans count firings),
        # so the injected failure actually lands instead of being
        # masked by a cache hit.
        assert cache.stats.hits == 0
        assert [row.index for row in faulted.rows if not row.ok] == [1]

    def test_hit_values_are_bitwise_identical(self, tmp_path):
        cache = SolveCache(tmp_path)
        cold = run_experiment(_spec(measure=square, n=6), cache=cache)
        warm = run_experiment(_spec(measure=square, n=6), cache=cache)
        for a, b in zip(cold.values(), warm.values()):
            assert a == b and type(a) is type(b)

    def test_execution_knobs_are_excluded_from_point_keys(self):
        # backend / workers / batch_width / solver choose *how* a point
        # is computed, never *what*; two specs differing only in those
        # knobs must key every point identically.
        base = _spec(n=3)
        tuned = _spec(n=3, backend="batched", batch_measure=square,
                      workers=4, batch_width=64, solver="sparse",
                      chunk_size=2)
        for point in base.points:
            assert experiment_point_key(base, point.params) \
                == experiment_point_key(tuned, point.params)

    def test_sharded_sparse_warm_run_hits_serial_dense_entries(
            self, tmp_path):
        # End to end: a cold serial dense campaign populates the cache;
        # re-running the same campaign sharded-batched with the sparse
        # kernel must hit every entry and return bitwise the same
        # metrics — execution knobs are invisible to the cache.
        from repro.analysis.montecarlo import (
            MonteCarloConfig, monte_carlo_spec,
        )
        cache = SolveCache(tmp_path)
        cold_cfg = MonteCarloConfig(runs=4, solver="dense")
        cold = run_experiment(
            monte_carlo_spec("sstvs", 0.8, 1.2, cold_cfg), cache=cache)
        assert cache.stats.stores == 4
        warm_cfg = MonteCarloConfig(runs=4, backend="batched",
                                    workers=2, batch_width=2,
                                    solver="sparse")
        warm = run_experiment(
            monte_carlo_spec("sstvs", 0.8, 1.2, warm_cfg), cache=cache)
        assert cache.stats.hits == 4
        for a, b in zip(cold.values(), warm.values()):
            assert a == b
