"""SIGTERM parity: orchestrated shutdown equals Ctrl-C."""

import os
import signal
import threading

import pytest

from repro.runtime.signals import sigterm_interrupts


class TestSigtermInterrupts:
    def test_sigterm_raises_keyboard_interrupt(self):
        with pytest.raises(KeyboardInterrupt, match="SIGTERM"):
            with sigterm_interrupts() as installed:
                assert installed
                os.kill(os.getpid(), signal.SIGTERM)

    def test_previous_handler_is_restored(self):
        sentinel = []

        def previous(signum, frame):
            sentinel.append(signum)

        old = signal.signal(signal.SIGTERM, previous)
        try:
            with sigterm_interrupts():
                assert signal.getsignal(signal.SIGTERM) is not previous
            assert signal.getsignal(signal.SIGTERM) is previous
            os.kill(os.getpid(), signal.SIGTERM)
            assert sentinel == [signal.SIGTERM]
        finally:
            signal.signal(signal.SIGTERM, old)

    def test_restored_even_after_interrupt(self):
        old = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            with sigterm_interrupts():
                os.kill(os.getpid(), signal.SIGTERM)
        assert signal.getsignal(signal.SIGTERM) is old

    def test_noop_off_the_main_thread(self):
        observed = []

        def body():
            with sigterm_interrupts() as installed:
                observed.append(installed)

        worker = threading.Thread(target=body)
        worker.start()
        worker.join()
        assert observed == [False]
