"""Fault-injection tests for every rung of the DC retry ladder.

Each test sabotages a chosen strategy deterministically and asserts
the next rung rescues the solve — or, when everything is sabotaged,
that the ConvergenceError carries the full attempt history.
"""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.runtime import FaultPlan, FaultSpec, RetryPolicy, inject
from repro.spice import Circuit, OperatingPoint
from repro.spice.devices import Diode, Resistor, VoltageSource
from repro.spice.newton import NewtonOptions, newton_solve, solve_dc_report

pytestmark = pytest.mark.resilience


def diode_circuit():
    ckt = Circuit("t")
    ckt.add(VoltageSource("v", "a", "0", dc=5.0))
    ckt.add(Resistor("r", "a", "d", 1e3))
    ckt.add(Diode("d1", "d", "0"))
    ckt.finalize()
    return ckt


class TestFallbackRungs:
    def test_newton_fails_gmin_converges(self):
        plan = FaultPlan([FaultSpec("iteration_exhaustion",
                                    strategy="newton")])
        x, report = solve_dc_report(diode_circuit(), faults=plan)
        assert report.converged
        assert report.winning_strategy == "gmin"
        assert report.attempts[0].strategy == "newton"
        assert not report.attempts[0].converged
        assert report.attempts[0].injected_fault == "iteration_exhaustion"
        assert all(a.converged for a in report.attempts[1:])
        assert np.all(np.isfinite(x))

    def test_gmin_fails_source_converges(self):
        plan = FaultPlan([
            FaultSpec("iteration_exhaustion", strategy="newton"),
            FaultSpec("singular_jacobian", strategy="gmin", count=None),
        ])
        x, report = solve_dc_report(diode_circuit(), faults=plan)
        assert report.converged
        assert report.winning_strategy == "source"
        strategies = report.strategies_tried
        assert strategies == ("newton", "gmin", "source")
        # The sabotaged gmin rung died on a genuinely singular matrix.
        gmin_attempts = [a for a in report.attempts
                         if a.strategy == "gmin"]
        assert len(gmin_attempts) == 1
        assert "singular" in gmin_attempts[0].error

    def test_all_fail_error_carries_history(self):
        plan = FaultPlan([FaultSpec("iteration_exhaustion", count=None)])
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc_report(diode_circuit(), faults=plan)
        error = excinfo.value
        assert error.report is not None
        assert not error.report.converged
        # One newton attempt, one gmin rung, one source rung — each
        # died on its first injected fault.
        assert set(a.strategy for a in error.attempts) == \
            {"newton", "gmin", "source"}
        # Satellite: the error exposes the best attempt's counters
        # instead of discarding them.
        assert error.iterations is not None
        best = error.report.best_attempt()
        assert best is not None and error.iterations == best.iterations

    def test_best_attempt_residual_threaded(self):
        # Starve the iteration budget so every strategy runs real
        # Newton and fails with a genuine residual.
        opts = NewtonOptions(max_iterations=2, max_step_v=0.01)
        policy = RetryPolicy(gmin_ladder=(1e-3,), source_ramp=(0.5, 1.0))
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc_report(diode_circuit(), options=opts, policy=policy)
        error = excinfo.value
        assert error.residual is not None
        assert error.iterations == 2
        assert len(error.attempts) >= 2
        assert all(a.residual is not None for a in error.attempts)


class TestInjectedMechanisms:
    def test_singular_jacobian_is_real(self):
        plan = FaultPlan([FaultSpec("singular_jacobian")])
        ckt = diode_circuit()
        with pytest.raises(ConvergenceError, match="singular"):
            newton_solve(ckt, np.zeros(ckt.system_size()), faults=plan)

    def test_nan_residual_is_real(self):
        plan = FaultPlan([FaultSpec("nan_residual")])
        ckt = diode_circuit()
        with pytest.raises(ConvergenceError, match="non-finite"):
            newton_solve(ckt, np.zeros(ckt.system_size()), faults=plan)

    def test_ambient_plan_reaches_solver(self):
        plan = FaultPlan([FaultSpec("iteration_exhaustion",
                                    strategy="newton")])
        with inject(plan):
            _, report = solve_dc_report(diode_circuit())
        assert report.winning_strategy == "gmin"
        assert plan.fired_count == 1


class TestPolicyKnobs:
    def test_fast_fail_skips_fallbacks(self):
        plan = FaultPlan([FaultSpec("iteration_exhaustion",
                                    strategy="newton")])
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc_report(diode_circuit(), policy=RetryPolicy.fast_fail(),
                            faults=plan)
        assert len(excinfo.value.attempts) == 1

    def test_wall_clock_budget_abandons(self):
        plan = FaultPlan([FaultSpec("iteration_exhaustion",
                                    strategy="newton")])
        policy = RetryPolicy(max_wall_clock_s=0.0)
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc_report(diode_circuit(), policy=policy, faults=plan)
        error = excinfo.value
        assert error.report.abandoned_reason is not None
        assert "wall-clock" in error.report.abandoned_reason
        assert len(error.attempts) == 1  # no fallback rung ran

    def test_iteration_budget_abandons(self):
        plan = FaultPlan([FaultSpec("iteration_exhaustion",
                                    strategy="newton")])
        policy = RetryPolicy(max_total_iterations=10)
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc_report(diode_circuit(), policy=policy, faults=plan)
        assert "iteration budget" in excinfo.value.report.abandoned_reason

    def test_custom_ladder_is_followed(self):
        plan = FaultPlan([FaultSpec("iteration_exhaustion",
                                    strategy="newton")])
        policy = RetryPolicy(gmin_ladder=(1e-4, 1e-8))
        _, report = solve_dc_report(diode_circuit(), policy=policy,
                                    faults=plan)
        details = [a.detail for a in report.attempts
                   if a.strategy == "gmin"]
        # Two ladder rungs plus the target-gmin rung.
        assert details == ["gmin=0.0001", "gmin=1e-08", "gmin=1e-12"]


class TestReports:
    def test_clean_solve_report(self):
        x, report = solve_dc_report(diode_circuit())
        assert report.converged
        assert report.winning_strategy == "newton"
        assert len(report.attempts) == 1
        assert report.attempts[0].converged
        assert report.attempts[0].iterations > 0
        assert report.total_iterations == report.attempts[0].iterations

    def test_operating_point_carries_report(self):
        op = OperatingPoint(diode_circuit()).run()
        assert op.report.converged
        assert op.report.winning_strategy == "newton"

    def test_operating_point_with_sabotage(self):
        plan = FaultPlan([FaultSpec("iteration_exhaustion",
                                    strategy="newton")])
        op = OperatingPoint(diode_circuit(), faults=plan).run()
        assert op.report.winning_strategy == "gmin"
        assert 0.5 < op["d"] < 0.85  # solution still physical

    def test_pretty_renders(self):
        plan = FaultPlan([FaultSpec("iteration_exhaustion",
                                    strategy="newton")])
        _, report = solve_dc_report(diode_circuit(), faults=plan)
        text = report.pretty("title")
        assert "converged via gmin" in text
        assert "injected=iteration_exhaustion" in text
