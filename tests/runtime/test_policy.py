"""Tests for RetryPolicy schedules and validation."""

import pytest

from repro.errors import AnalysisError
from repro.runtime import (
    DEFAULT_GMIN_LADDER, DEFAULT_SOURCE_RAMP, RetryPolicy,
)

pytestmark = pytest.mark.resilience


class TestDefaults:
    def test_default_matches_legacy_ladder(self):
        # The default policy must be behavior-identical to the
        # pre-policy hard-coded fallback chain.
        policy = RetryPolicy()
        assert policy.gmin_ladder == (1e-3, 1e-4, 1e-5, 1e-6, 1e-7,
                                      1e-8, 1e-9, 1e-10, 1e-11)
        assert policy.source_ramp[0] == pytest.approx(0.1)
        assert policy.source_ramp[-1] == 1.0
        assert policy.enable_gmin_stepping
        assert policy.enable_source_stepping
        assert policy.max_wall_clock_s is None
        assert policy.max_total_iterations is None

    def test_module_constants(self):
        assert RetryPolicy().gmin_ladder == DEFAULT_GMIN_LADDER
        assert RetryPolicy().source_ramp == DEFAULT_SOURCE_RAMP

    def test_default_validates(self):
        RetryPolicy().validate()


class TestPresets:
    def test_fast_fail_disables_fallbacks(self):
        policy = RetryPolicy.fast_fail()
        policy.validate()
        assert not policy.enable_gmin_stepping
        assert not policy.enable_source_stepping
        assert policy.max_step_halvings < RetryPolicy().max_step_halvings

    def test_patient_is_denser(self):
        policy = RetryPolicy.patient()
        policy.validate()
        assert len(policy.gmin_ladder) > len(DEFAULT_GMIN_LADDER)
        assert len(policy.source_ramp) > len(DEFAULT_SOURCE_RAMP)
        assert policy.source_ramp[-1] == 1.0


class TestValidation:
    def test_negative_gmin_rejected(self):
        with pytest.raises(AnalysisError):
            RetryPolicy(gmin_ladder=(1e-3, -1e-6)).validate()

    def test_ramp_must_end_at_unity(self):
        with pytest.raises(AnalysisError):
            RetryPolicy(source_ramp=(0.5, 0.9)).validate()

    def test_ramp_values_bounded(self):
        with pytest.raises(AnalysisError):
            RetryPolicy(source_ramp=(0.5, 1.5, 1.0)).validate()

    def test_negative_halvings_rejected(self):
        with pytest.raises(AnalysisError):
            RetryPolicy(max_step_halvings=-1).validate()

    def test_bad_budgets_rejected(self):
        with pytest.raises(AnalysisError):
            RetryPolicy(max_wall_clock_s=-1.0).validate()
        with pytest.raises(AnalysisError):
            RetryPolicy(max_total_iterations=0).validate()
