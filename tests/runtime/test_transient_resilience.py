"""Fault-injection and retry-policy tests for the transient engine."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.runtime import FaultPlan, FaultSpec, RetryPolicy, inject
from repro.spice import Circuit, Transient
from repro.spice.devices import Capacitor, Pulse, Resistor, VoltageSource
from repro.spice.transient import TransientOptions

pytestmark = pytest.mark.resilience


def rc_circuit(tau=1e-9):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("v", "in", "0", shape=Pulse(
        0, 1, delay=1e-9, rise=1e-12, fall=1e-12, width=20e-9,
        period=100e-9)))
    ckt.add(Resistor("r", "in", "out", 1e3))
    ckt.add(Capacitor("c", "out", "0", tau / 1e3))
    return ckt


class TestTransientReport:
    def test_clean_run_has_report(self):
        res = Transient(rc_circuit(), 3e-9).run()
        assert res.report.steps_accepted == res.sample_count - 1
        assert res.report.newton_failures == 0
        assert not res.report.stalled
        assert res.report.clean
        assert res.report.dc_report is not None
        assert res.report.dc_report.converged

    def test_pretty_renders(self):
        res = Transient(rc_circuit(), 3e-9).run()
        assert "accepted" in res.report.pretty()


class TestTimestepStallInjection:
    def test_bounded_stall_recovers(self):
        # Three injected stalls inside the pulse edge window: the
        # engine must halve through them and still finish.
        plan = FaultPlan([FaultSpec("timestep_stall",
                                    time_window=(1.0e-9, 1.5e-9),
                                    count=3)])
        res = Transient(rc_circuit(), 3e-9, faults=plan).run()
        assert res.times[-1] == pytest.approx(3e-9, rel=1e-9)
        assert res.report.newton_failures == 3
        assert len(res.report.injected_faults) == 3
        assert res.report.total_halvings >= 3
        assert not res.report.stalled

    def test_recovered_waveform_still_accurate(self):
        plan = FaultPlan([FaultSpec("timestep_stall",
                                    time_window=(1.0e-9, 1.5e-9),
                                    count=2)])
        res = Transient(rc_circuit(), 6e-9, faults=plan).run()
        w = res.wave("out")
        assert w.value_at(2e-9) == pytest.approx(1 - np.exp(-1), abs=0.02)

    def test_unbounded_stall_raises_with_report(self):
        plan = FaultPlan([FaultSpec("timestep_stall",
                                    time_window=(1.0e-9, 2.0e-9),
                                    count=None)])
        with pytest.raises(ConvergenceError, match="stalled") as excinfo:
            Transient(rc_circuit(), 3e-9, faults=plan).run()
        report = excinfo.value.report
        assert report is not None
        assert report.stalled
        assert report.newton_failures > 0

    def test_ambient_plan_reaches_transient(self):
        plan = FaultPlan([FaultSpec("timestep_stall",
                                    time_window=(1.0e-9, 1.5e-9),
                                    count=1)])
        with inject(plan):
            res = Transient(rc_circuit(), 3e-9).run()
        assert res.report.newton_failures == 1
        assert plan.fired_count == 1


class TestHalvingBudget:
    def test_budget_bounds_grinding(self):
        # A zero-halving budget turns the first injected failure into
        # an immediate, well-described stall instead of a grind to
        # h_min.
        plan = FaultPlan([FaultSpec("timestep_stall",
                                    time_window=(1.0e-9, 2.0e-9),
                                    count=None)])
        options = TransientOptions(policy=RetryPolicy(max_step_halvings=0))
        with pytest.raises(ConvergenceError, match="halving budget"):
            Transient(rc_circuit(), 3e-9, options, faults=plan).run()

    def test_budget_resets_on_accepted_step(self):
        # Two isolated single stalls far apart must not accumulate
        # against a budget of one.
        plan = FaultPlan([FaultSpec("timestep_stall",
                                    time_window=(1.0e-9, 1.1e-9), count=1),
                          FaultSpec("timestep_stall",
                                    time_window=(2.0e-9, 2.1e-9),
                                    count=1)])
        options = TransientOptions(policy=RetryPolicy(max_step_halvings=1))
        res = Transient(rc_circuit(), 3e-9, options, faults=plan).run()
        assert res.report.newton_failures == 2
        assert res.times[-1] == pytest.approx(3e-9, rel=1e-9)
