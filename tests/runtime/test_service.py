"""Supervised campaign service: journal, watchdog, requeue, jobs."""

import json
import os

import pytest

from repro.errors import AnalysisError
from repro.runtime.cache import SolveCache
from repro.runtime.experiment import (
    ArtifactStore, ExperimentPoint, ExperimentSpec, ResultRow, ResultSet,
    run_experiment,
)
from repro.runtime.faults import FaultPlan, FaultSpec, inject
from repro.runtime.service import (
    CampaignService, JournalWriter, ServiceConfig, ServiceStats,
    build_job_spec, replay_journal, serve_jobs,
)


def square(x):
    return x * x


def flaky(x):
    if x == 2.0:
        raise ValueError("sample 2 diverged")
    return x * x


def die_hard(x):
    """Kill the worker process outright — no exception to quarantine."""
    if x == 2.0:
        os._exit(1)
    return x * x


def _spec(measure=square, n=6, **overrides):
    points = [ExperimentPoint(i, float(i)) for i in range(n)]
    options = {"name": "service-unit", "measure": measure,
               "points": points, "codec": "json"}
    options.update(overrides)
    return ExperimentSpec(**options)


def _config(**overrides):
    options = {"chunk_size": 2, "workers": 2, "poll_interval_s": 0.005,
               "backoff_base_s": 0.01, "backoff_cap_s": 0.05}
    options.update(overrides)
    return ServiceConfig(**options)


class TestServiceConfig:
    @pytest.mark.parametrize("field, bad", [
        ("chunk_size", 0), ("workers", 0), ("max_attempts", 0),
        ("heartbeat_timeout_s", 0.0),
    ])
    def test_validate_rejects(self, field, bad):
        config = ServiceConfig(**{field: bad})
        with pytest.raises(AnalysisError):
            config.validate()

    def test_defaults_are_valid(self):
        ServiceConfig().validate()

    def test_stats_to_json(self):
        blob = ServiceStats(crashes=2, requeues=2).to_json()
        assert blob["crashes"] == 2
        assert blob["chunks_dispatched"] == 0


class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        journal = JournalWriter(tmp_path / "journal.jsonl")
        journal.append({"t": "job", "points": 4})
        journal.append({"t": "done", "chunk": 0})
        records = replay_journal(journal.path)
        assert [r["t"] for r in records] == ["job", "done"]
        assert all(r["schema"] == "repro-journal-v1" for r in records)
        assert all("utc" in r for r in records)
        assert journal.records_written == 2

    def test_replay_skips_torn_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        good = json.dumps({"t": "job"})
        path.write_text(good + "\n"
                        + "{corrupt interior line\n"
                        + json.dumps({"t": "done"}) + "\n"
                        + '{"t": "torn-tail", "chunk')
        records = replay_journal(path)
        assert [r["t"] for r in records] == ["job", "done"]

    def test_replay_of_missing_journal_is_empty(self, tmp_path):
        assert replay_journal(tmp_path / "nope.jsonl") == []

    def test_disk_full_degrades_not_raises(self, tmp_path):
        journal = JournalWriter(tmp_path / "journal.jsonl")
        journal.append({"t": "job"})
        plan = FaultPlan([FaultSpec("journal_disk_full")])
        with inject(plan):
            with pytest.warns(RuntimeWarning, match="journal"):
                journal.append({"t": "dispatch"})
        assert journal.degraded
        journal.append({"t": "dropped"})  # silently a no-op
        assert [r["t"] for r in replay_journal(journal.path)] == ["job"]


class TestCampaignService:
    def test_matches_run_experiment_bitwise(self, tmp_path):
        serial = run_experiment(_spec())
        service = CampaignService(tmp_path, config=_config())
        result = service.run(_spec())
        assert result.values() == serial.values()
        assert result.counts == serial.counts
        assert service.stats.chunks_completed == 3
        assert service.stats.crashes == 0

    def test_writes_journal_and_manifest(self, tmp_path):
        service = CampaignService(tmp_path, config=_config())
        result = service.run(_spec())
        records = replay_journal(service.journal_path(result.run_id))
        kinds = [r["t"] for r in records]
        assert kinds[0] == "job"
        assert kinds[-1] == "finished"
        assert kinds.count("dispatch") == 3
        reloaded = ArtifactStore(tmp_path).load(result.run_id)
        assert reloaded.values() == result.values()

    def test_err_rows_quarantined_like_engine(self, tmp_path):
        serial = run_experiment(_spec(measure=flaky))
        service = CampaignService(tmp_path, config=_config())
        result = service.run(_spec(measure=flaky))
        assert result.counts == serial.counts
        bad = [row for row in result.rows if not row.ok]
        assert [row.index for row in bad] == [2]
        assert "diverged" in bad[0].error

    def test_max_failures_aborts(self, tmp_path):
        service = CampaignService(tmp_path, config=_config())
        with pytest.raises(AnalysisError, match="max_failures"):
            service.run(_spec(measure=flaky, max_failures=0))

    def test_fault_campaigns_are_rejected(self, tmp_path):
        service = CampaignService(tmp_path, config=_config())
        spec = _spec(faults=FaultPlan.fail_samples([0]))
        with pytest.raises(AnalysisError, match="run_experiment"):
            service.run(spec)

    def test_cold_then_warm_cache(self, tmp_path):
        cache = SolveCache(tmp_path / "cache")
        store = tmp_path / "store"
        cold_service = CampaignService(store, cache=cache,
                                       config=_config())
        cold = cold_service.run(_spec())
        assert cache.stats.stores == 6
        warm_service = CampaignService(store, cache=cache,
                                       config=_config())
        warm = warm_service.run(_spec())
        assert warm_service.stats.cache_hits == 6
        assert warm_service.stats.chunks_dispatched == 0
        assert warm.values() == cold.values()

    def test_resume_keeps_prior_rows(self, tmp_path):
        prior = ResultSet(
            name="service-unit", codec="json", metadata={},
            rows=[ResultRow(ordinal=0, index=0, status="ok", value=-1.0),
                  ResultRow(ordinal=1, index=1, status="ok", value=-2.0)],
            interrupted=True)
        service = CampaignService(tmp_path, config=_config())
        result = service.run(_spec(), resume=prior)
        values = {row.index: row.value for row in result.rows}
        assert values[0] == -1.0 and values[1] == -2.0  # not recomputed
        assert values[5] == 25.0
        assert service.stats.chunks_dispatched == 2  # 4 pending / 2

    def test_worker_crash_is_requeued_and_result_identical(self,
                                                           tmp_path):
        serial = run_experiment(_spec())
        service = CampaignService(tmp_path, config=_config())
        plan = FaultPlan([FaultSpec("worker_crash", sample_index=0)])
        with inject(plan):
            result = service.run(_spec())
        assert service.stats.crashes == 1
        assert service.stats.requeues == 1
        assert result.values() == serial.values()
        records = replay_journal(service.journal_path(result.run_id))
        kinds = [r["t"] for r in records]
        assert "crash" in kinds and "requeue" in kinds

    def test_hung_worker_is_killed_by_watchdog(self, tmp_path):
        serial = run_experiment(_spec())
        config = _config(heartbeat_timeout_s=0.4)
        service = CampaignService(tmp_path, config=config)
        plan = FaultPlan([FaultSpec("worker_crash", strategy="hang",
                                    sample_index=0)])
        with inject(plan):
            result = service.run(_spec())
        assert service.stats.watchdog_kills == 1
        assert result.values() == serial.values()

    def test_torn_chunk_line_is_skipped_then_recomputed(self, tmp_path):
        serial = run_experiment(_spec())
        service = CampaignService(tmp_path, config=_config())
        plan = FaultPlan([FaultSpec("worker_crash", strategy="torn",
                                    sample_index=0)])
        with inject(plan):
            result = service.run(_spec())
        assert service.stats.crashes == 1
        assert result.values() == serial.values()

    def test_repeated_deaths_quarantine_the_chunk(self, tmp_path):
        config = _config(chunk_size=4, workers=1, max_attempts=2)
        service = CampaignService(tmp_path, config=config)
        result = service.run(_spec(measure=die_hard, n=4))
        values = {row.index: row.value for row in result.rows
                  if row.ok}
        assert values == {0: 0.0, 1: 1.0}  # salvaged before the death
        bad = {row.index: row for row in result.rows if not row.ok}
        assert set(bad) == {2, 3}
        assert all("worker died" in row.error for row in bad.values())
        assert service.stats.quarantined == 2
        assert service.stats.crashes == config.max_attempts

    def test_journal_disk_full_does_not_hurt_the_run(self, tmp_path):
        serial = run_experiment(_spec())
        service = CampaignService(tmp_path, config=_config())
        plan = FaultPlan([FaultSpec("journal_disk_full")])
        with inject(plan):
            with pytest.warns(RuntimeWarning, match="journal"):
                result = service.run(_spec())
        assert result.values() == serial.values()


class TestJobFiles:
    def test_build_mc_spec(self):
        spec = build_job_spec({"experiment": "mc", "kind": "sstvs",
                               "runs": 3, "seed": 7})
        assert len(spec.points) == 3
        assert spec.name == "Monte Carlo"

    def test_build_functional_spec(self):
        spec = build_job_spec({"experiment": "functional",
                               "kind": "sstvs", "step": 0.4})
        assert len(spec.points) > 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(AnalysisError, match="unknown job"):
            build_job_spec({"experiment": "quantum"})

    def test_non_dict_request_rejected(self):
        with pytest.raises(AnalysisError, match="JSON object"):
            build_job_spec(["mc"])

    def test_serve_empty_directory(self, tmp_path):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        assert serve_jobs(jobs, tmp_path / "store", once=True,
                          report=lambda *_: None) == 0

    def test_serve_processes_and_finishes_jobs(self, tmp_path):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        (jobs / "good.json").write_text(json.dumps(
            {"experiment": "mc", "kind": "sstvs", "runs": 2,
             "seed": 11}))
        (jobs / "bad.json").write_text(json.dumps(
            {"experiment": "quantum"}))
        lines = []
        processed = serve_jobs(jobs, tmp_path / "store",
                               config=_config(), once=True,
                               report=lines.append)
        assert processed == 2
        failed = json.loads((jobs / "bad.failed.json").read_text())
        assert failed["state"] == "failed"
        assert "unknown job" in failed["error"]
        done = json.loads((jobs / "good.done.json").read_text())
        assert done["state"] == "done"
        assert done["counts"]["ok"] == 2
        assert done["run_id"]
        assert not (jobs / "good.running").exists()
        assert not (jobs / "good.json").exists()
        result = ArtifactStore(tmp_path / "store").load(done["run_id"])
        assert result.counts["ok"] == 2
