"""Unit tests for the telemetry subsystem itself.

The integration-level contracts (spice emission names, campaign
aggregation parity, store round-trips) live in the spice/runtime
suites; this file pins the primitives: histogram moment algebra,
ambient activation semantics, trace-mode plumbing, outlier detection,
and the rendered summary.
"""

import pytest

from repro.errors import AnalysisError
from repro.runtime import telemetry
from repro.runtime.experiment import ExperimentPoint, ExperimentSpec
from repro.runtime.telemetry import (
    TRACE_MODES, TRACE_SCHEMA, CollectingTracer, Histogram, NullTracer,
    ProfilingTracer, Tracer, active_tracer, aggregate_traces,
    campaign_trace_mode, make_tracer, render_trace,
    set_campaign_trace_mode, trace, trace_outliers,
)

pytestmark = pytest.mark.experiment


class TestHistogram:
    def test_moments(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.add(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0 and h.max == 4.0
        assert h.std == pytest.approx(1.118033988749895)

    def test_empty(self):
        h = Histogram()
        assert h.mean == 0.0 and h.std == 0.0
        assert h.to_json()["min"] is None

    def test_merge_equals_combined_stream(self):
        a, b, combined = Histogram(), Histogram(), Histogram()
        for v in (1.0, 5.0, 2.0):
            a.add(v)
            combined.add(v)
        for v in (7.0, -3.0):
            b.add(v)
            combined.add(v)
        a.merge(b)
        assert a.to_json() == combined.to_json()

    def test_merge_empty_is_identity(self):
        a = Histogram()
        a.add(2.0)
        before = a.to_json()
        a.merge(Histogram())
        assert a.to_json() == before

    def test_json_roundtrip(self):
        h = Histogram()
        h.add(3.25)
        h.add(-1.5)
        assert Histogram.from_json(h.to_json()).to_json() == h.to_json()


class TestActivation:
    def test_disabled_by_default(self):
        assert active_tracer() is None

    def test_trace_activates_and_restores(self):
        t = CollectingTracer()
        with trace(t) as active:
            assert active is t
            assert active_tracer() is t
        assert active_tracer() is None

    def test_nested_activation_shadows(self):
        outer, inner = CollectingTracer(), CollectingTracer()
        with trace(outer):
            with trace(inner):
                assert active_tracer() is inner
            assert active_tracer() is outer
        assert active_tracer() is None

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with trace(CollectingTracer()):
                raise RuntimeError("boom")
        assert active_tracer() is None

    def test_null_tracer_records_nothing(self):
        t = NullTracer()
        with trace(t):
            t.count("x")
            t.observe("y", 1.0)
            with t.phase("z"):
                pass
        assert t.snapshot() == {}
        assert not t.condition_estimates

    def test_null_phase_is_shared_noop(self):
        t = Tracer()
        assert t.phase("a") is t.phase("b")


class TestCollectingTracer:
    def test_counters_histograms_timers(self):
        t = CollectingTracer()
        t.count("solves")
        t.count("solves", 2)
        t.observe("iters", 4.0)
        t.observe("iters", 6.0)
        with t.phase("dc"):
            pass
        snap = t.snapshot()
        assert snap["counters"] == {"solves": 3}
        assert snap["histograms"]["iters"]["count"] == 2
        assert snap["timers"]["dc"] >= 0.0

    def test_profiling_tracer_captures_profile(self):
        t = ProfilingTracer(top=5)
        with trace(t):
            sum(range(1000))
        snap = t.snapshot()
        assert "cumulative" in snap["profile"]
        assert snap["counters"] == {}

    def test_make_tracer(self):
        assert type(make_tracer("collect")) is CollectingTracer
        assert type(make_tracer("profile")) is ProfilingTracer
        with pytest.raises(ValueError):
            make_tracer("bogus")


class TestCampaignMode:
    def test_set_and_clear(self):
        assert campaign_trace_mode() is None
        set_campaign_trace_mode("collect")
        try:
            assert campaign_trace_mode() == "collect"
        finally:
            set_campaign_trace_mode(None)
        assert campaign_trace_mode() is None

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            set_campaign_trace_mode("verbose")

    def test_spec_validates_trace_mode(self):
        spec = ExperimentSpec(name="t", measure=len,
                              points=[ExperimentPoint(0, ())],
                              trace="bogus")
        with pytest.raises(AnalysisError, match="trace"):
            spec.validate()
        for mode in TRACE_MODES + (None,):
            ExperimentSpec(name="t", measure=len,
                           points=[ExperimentPoint(0, ())],
                           trace=mode).validate()


def _snap(counters=None, histograms=None):
    return {"counters": counters or {}, "histograms": histograms or {},
            "timers": {}}


def _iters(*values):
    h = Histogram()
    for v in values:
        h.add(v)
    return {"newton.iterations": h.to_json()}


class TestAggregation:
    def test_totals_merge_and_point_order(self):
        doc = aggregate_traces(
            [(0, _snap({"dc.solves": 1}, _iters(3.0))),
             (1, _snap({"dc.solves": 2}, _iters(5.0, 7.0)))],
            "collect")
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["mode"] == "collect"
        assert [p["index"] for p in doc["points"]] == [0, 1]
        assert doc["totals"]["counters"] == {"dc.solves": 3}
        merged = doc["totals"]["histograms"]["newton.iterations"]
        assert merged["count"] == 3 and merged["max"] == 7.0

    def test_none_snapshots_skipped(self):
        doc = aggregate_traces([(0, _snap({"a": 1})), (1, None)], "collect")
        assert len(doc["points"]) == 1
        assert doc["totals"]["counters"] == {"a": 1}


class TestOutliers:
    def _doc(self, iteration_counts):
        points = [{"index": i, **_snap({}, _iters(float(n)))}
                  for i, n in enumerate(iteration_counts)]
        return {"schema": TRACE_SCHEMA, "mode": "collect",
                "points": points, "totals": _snap()}

    def test_flags_extreme_point(self):
        doc = self._doc([4, 5, 4, 5, 4, 5, 4, 60])
        flagged = trace_outliers(doc, sigma=2.0)
        assert flagged and flagged[0]["index"] == 7
        assert flagged[0]["sigmas"] > 2.0

    def test_uniform_distribution_clean(self):
        assert trace_outliers(self._doc([5] * 8)) == []

    def test_too_few_points_never_flag(self):
        assert trace_outliers(self._doc([4, 4, 90])) == []


class TestRender:
    def test_summary_sections(self):
        doc = aggregate_traces(
            [(i, _snap({"dc.solves": 1}, _iters(4.0 + i)))
             for i in range(5)],
            "collect")
        text = render_trace(doc)
        assert "5 points" in text
        assert "dc.solves" in text
        assert "newton.iterations" in text
        assert "no convergence outliers" in text

    def test_outlier_and_schema_warnings(self):
        doc = aggregate_traces(
            [(i, _snap({}, _iters(v)))
             for i, v in enumerate([4, 5, 4, 5, 4, 5, 4, 120])],
            "collect")
        assert "outliers" in render_trace(doc)
        doc["schema"] = "repro-trace-v999"
        assert "WARNING: unknown schema" in render_trace(doc)

    def test_profile_presence_reported(self):
        doc = aggregate_traces([(0, {**_snap(), "profile": "pstats..."}),
                                (1, _snap())], "profile")
        assert "cProfile captured for 1 points" in render_trace(doc)
