"""Per-node cache-key separation (the fingerprint-aliasing fix).

Before the PDK registry, ``_cached_pdk_fingerprint`` computed one
process-wide digest: the first node to touch the cache would have
stamped its fingerprint onto every other node's keys, silently serving
one process's solves for another. These tests pin the fix: two nodes
never share cache entries, through either the metadata route or a
PDK object riding in the params tuple.
"""

from repro.core.characterize import characterize_kinds_spec
from repro.pdk import Pdk, make_pdk
from repro.runtime.cache import (
    _cached_pdk_fingerprint, _point_pdk_node, experiment_point_key,
)
from repro.runtime.experiment import ExperimentPoint, ExperimentSpec


def _spec(metadata):
    return ExperimentSpec(name="t", measure=_measure,
                          points=[ExperimentPoint(0, (0,))],
                          codec="json", metadata=metadata)


def _measure(params):
    return 0.0


class TestFingerprintCache:
    def test_keyed_by_node_not_process_wide(self):
        ptm90 = _cached_pdk_fingerprint("ptm90")
        lv22 = _cached_pdk_fingerprint("lv22")
        assert ptm90 != lv22
        # Ask again in the other order: each node gets its own digest
        # back, not whichever was computed first.
        assert _cached_pdk_fingerprint("lv22") == lv22
        assert _cached_pdk_fingerprint("ptm90") == ptm90

    def test_default_is_ptm90(self):
        assert _cached_pdk_fingerprint() == _cached_pdk_fingerprint("ptm90")


class TestPointNodeResolution:
    def test_metadata_route(self):
        assert _point_pdk_node(_spec({"pdk_node": "lv22"}), (1, 2)) \
            == "lv22"

    def test_params_route_finds_a_pdk_object(self):
        spec = _spec({})
        assert _point_pdk_node(spec, (0.8, make_pdk("lv22"), None)) \
            == "lv22"
        assert _point_pdk_node(spec, (0.8, Pdk(), None)) == "ptm90"

    def test_default_when_nothing_names_a_node(self):
        assert _point_pdk_node(_spec({}), (1, "x", None)) == "ptm90"


class TestKeySeparation:
    def test_metadata_node_separates_keys(self):
        a = experiment_point_key(_spec({"pdk_node": "ptm90"}), (1, 2))
        b = experiment_point_key(_spec({"pdk_node": "lv22"}), (1, 2))
        assert a != b

    def test_params_borne_pdk_separates_keys(self):
        # Same spec, params differing only in the PDK object's node:
        # both the canonical repr of the Pdk AND the fingerprint differ.
        spec = _spec({})
        a = experiment_point_key(spec, (0.8, 1.2, Pdk()))
        b = experiment_point_key(spec, (0.8, 1.2, make_pdk("lv22")))
        assert a != b

    def test_characterize_specs_never_alias_across_nodes(self):
        ptm90 = characterize_kinds_spec(["sstvs"], 0.8, 1.2, pdk=Pdk())
        lv22 = characterize_kinds_spec(["sstvs"], 0.8, 1.2,
                                       pdk=make_pdk("lv22"))
        keys_a = {experiment_point_key(ptm90, p.params)
                  for p in ptm90.points}
        keys_b = {experiment_point_key(lv22, p.params)
                  for p in lv22.points}
        assert not keys_a & keys_b

    def test_same_node_keys_are_reproducible(self):
        spec = _spec({"pdk_node": "lv22"})
        assert experiment_point_key(spec, (1, 2)) \
            == experiment_point_key(spec, (1, 2))
