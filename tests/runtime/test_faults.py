"""Tests for the deterministic fault-injection plumbing."""

import pytest

from repro.errors import AnalysisError
from repro.runtime import FaultPlan, FaultSpec, active_plan, inject

pytestmark = pytest.mark.resilience


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(AnalysisError):
            FaultSpec("cosmic_ray")

    def test_bad_count_rejected(self):
        with pytest.raises(AnalysisError):
            FaultSpec("nan_residual", count=0)

    def test_count_limits_firings(self):
        plan = FaultPlan([FaultSpec("nan_residual", count=2)])
        assert plan.fires("nan_residual")
        assert plan.fires("nan_residual")
        assert not plan.fires("nan_residual")

    def test_unlimited_count(self):
        plan = FaultPlan([FaultSpec("nan_residual", count=None)])
        for _ in range(10):
            assert plan.fires("nan_residual")

    def test_strategy_filter(self):
        plan = FaultPlan([FaultSpec("iteration_exhaustion",
                                    strategy="newton", count=None)])
        assert not plan.fires("iteration_exhaustion", strategy="gmin")
        assert plan.fires("iteration_exhaustion", strategy="newton")

    def test_time_window_filter(self):
        plan = FaultPlan([FaultSpec("timestep_stall",
                                    time_window=(1e-9, 2e-9),
                                    count=None)])
        assert not plan.fires("timestep_stall", time=0.5e-9)
        assert plan.fires("timestep_stall", time=1.5e-9)
        # A windowed spec never fires on a time-less solve.
        assert not plan.fires("timestep_stall")

    def test_sample_filter_needs_scope(self):
        plan = FaultPlan([FaultSpec("sample_failure", sample_index=3)])
        # Outside any sample scope the spec is inert.
        assert not plan.fires("sample_failure")
        with plan.sample_scope(2):
            assert not plan.fires("sample_failure")
        with plan.sample_scope(3):
            assert plan.fires("sample_failure")


class TestFaultPlan:
    def test_fail_samples_constructor(self):
        plan = FaultPlan.fail_samples([4, 7])
        assert plan.fires("sample_failure", sample=4)
        assert not plan.fires("sample_failure", sample=5)
        assert plan.fires("sample_failure", sample=7)
        # Each injected sample fault is one-shot.
        assert not plan.fires("sample_failure", sample=4)

    def test_log_records_fired_events(self):
        plan = FaultPlan([FaultSpec("nan_residual")])
        plan.fires("nan_residual", strategy="newton")
        assert plan.fired_count == 1
        assert plan.log[0].kind == "nan_residual"
        assert plan.log[0].strategy == "newton"

    def test_reset_rearms(self):
        plan = FaultPlan([FaultSpec("nan_residual")])
        assert plan.fires("nan_residual")
        assert not plan.fires("nan_residual")
        plan.reset()
        assert plan.fired_count == 0
        assert plan.fires("nan_residual")

    def test_draw_solve_order(self):
        # draw_solve consults kinds in SOLVE_FAULT_KINDS order, one
        # fault per call.
        plan = FaultPlan([FaultSpec("nan_residual"),
                          FaultSpec("singular_jacobian")])
        assert plan.draw_solve("newton") == "singular_jacobian"
        assert plan.draw_solve("newton") == "nan_residual"
        assert plan.draw_solve("newton") is None


class TestAmbientInjection:
    def test_inject_activates_and_restores(self):
        assert active_plan() is None
        plan = FaultPlan()
        with inject(plan):
            assert active_plan() is plan
            inner = FaultPlan()
            with inject(inner):
                assert active_plan() is inner
            assert active_plan() is plan
        assert active_plan() is None

    def test_inject_none_is_noop(self):
        with inject(None):
            assert active_plan() is None

    def test_restored_on_exception(self):
        plan = FaultPlan()
        with pytest.raises(RuntimeError):
            with inject(plan):
                raise RuntimeError("boom")
        assert active_plan() is None
