"""Process-pool campaign execution: parity, ordering, isolation.

The contract under test: ``workers > 1`` changes wall-clock behaviour
only. Every campaign driver (Monte Carlo, delay sweep, functional
grid, PVT corners) must produce results identical to its serial run —
sample for sample for Monte Carlo, since per-sample seeds derive from
the sample index alone — while progress callbacks fire in completion
order with the sample index attached and callback exceptions stay
isolated (PR 1 semantics).

Campaign-level tests stub the characterization kernel (the machinery
under test is the distribution layer, not the physics); pool workers
inherit the stub because the pool forks at first iteration, while the
monkeypatch is active.
"""

import warnings

import pytest

import repro.analysis.corners as corners_module
import repro.analysis.montecarlo as mc_module
import repro.analysis.sweep as sweep_module
from repro.analysis import (
    MonteCarloConfig, SweepGrid, pvt_report, run_monte_carlo,
    sweep_delay_surface, validate_functionality,
)
from repro.core import ShifterMetrics, StimulusPlan
from repro.runtime import (
    ArtifactStore, ExperimentPoint, ExperimentSpec, FaultPlan, ResultSet,
    TRACE_SCHEMA, run_experiment,
)
from repro.runtime.parallel import default_chunk_size, parallel_map

pytestmark = pytest.mark.resilience

FAST_PLAN = StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9)


def _square(task):
    return task * task


def _boom(task):
    raise ValueError(f"task {task} exploded")


def fake_characterize(pdk, kind, vddi, vddo, plan=None, sizing=None):
    value = float(pdk.rng.normal(1e-9, 1e-11))
    return ShifterMetrics(value, value, 1e-6, 1e-6, 1e-9, 1e-9,
                          functional=True)


def fake_characterize_corner(pdk, kind, vddi, vddo, plan=None,
                             sizing=None):
    value = 1e-9 * (1.0 + getattr(pdk, "temperature_c", 27.0) / 100.0)
    return ShifterMetrics(value, value, 1e-6, 1e-6, 1e-9, 1e-9,
                          functional=True)


class FakeQuick:
    def __init__(self, delay):
        self.delay_rise = delay
        self.delay_fall = delay * 1.5
        self.functional = True


def fake_quick_delays(pdk, kind, vddi, vddo, sizing=None):
    return FakeQuick(1e-12 * (vddi + 10.0 * vddo))


@pytest.fixture
def stub_characterize(monkeypatch):
    monkeypatch.setattr(mc_module, "characterize", fake_characterize)
    monkeypatch.setattr(corners_module, "characterize",
                        fake_characterize_corner)


@pytest.fixture
def stub_quick_delays(monkeypatch):
    monkeypatch.setattr(sweep_module, "quick_delays", fake_quick_delays)
    import repro.analysis.functional as functional_module
    monkeypatch.setattr(functional_module, "quick_delays",
                        fake_quick_delays)


class TestParallelMap:
    def test_pool_yields_same_results_as_serial(self):
        tasks = list(range(23))
        serial = list(parallel_map(_square, tasks, workers=1))
        pooled = list(parallel_map(_square, tasks, workers=3))
        assert sorted(pooled) == sorted(serial) == [t * t for t in tasks]

    def test_single_task_runs_inline(self):
        assert list(parallel_map(_square, [7], workers=8)) == [49]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="exploded"):
            list(parallel_map(_boom, [1, 2, 3], workers=2))

    def test_default_chunk_size(self):
        assert default_chunk_size(100, 4) == 7  # ~4 chunks per worker
        assert default_chunk_size(3, 8) == 1
        assert default_chunk_size(1, 1) == 1


class TestMonteCarloParity:
    def test_pool_samples_bitwise_identical_to_serial(
            self, stub_characterize):
        serial = run_monte_carlo(
            "sstvs", 0.8, 1.2,
            MonteCarloConfig(runs=40, seed=11, plan=FAST_PLAN))
        pooled = run_monte_carlo(
            "sstvs", 0.8, 1.2,
            MonteCarloConfig(runs=40, seed=11, plan=FAST_PLAN,
                             workers=3))
        assert pooled.samples == serial.samples  # exact float equality
        assert pooled.completed_indices == serial.completed_indices
        assert pooled.functional_yield == serial.functional_yield

    def test_progress_fires_per_sample_with_index(self,
                                                  stub_characterize):
        seen = {}
        result = run_monte_carlo(
            "sstvs", 0.8, 1.2,
            MonteCarloConfig(runs=12, seed=3, plan=FAST_PLAN, workers=3),
            progress=lambda index, metrics: seen.__setitem__(index,
                                                             metrics))
        assert sorted(seen) == list(range(12))
        # Callback metrics match the (index-sorted) result samples.
        assert [seen[i] for i in range(12)] == result.samples

    def test_progress_exception_isolated_under_pool(self,
                                                    stub_characterize):
        def bad_progress(index, metrics):
            raise RuntimeError("observer crashed")

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_monte_carlo(
                "sstvs", 0.8, 1.2,
                MonteCarloConfig(runs=8, seed=5, plan=FAST_PLAN,
                                 workers=2),
                progress=bad_progress)
        assert len(result.samples) == 8
        isolation = [w for w in caught
                     if "progress callback" in str(w.message)]
        assert len(isolation) == 1

    def test_fault_campaigns_run_serially_with_workers_set(
            self, stub_characterize):
        config = MonteCarloConfig(runs=10, seed=7, plan=FAST_PLAN,
                                  workers=4,
                                  faults=FaultPlan.fail_samples([2, 6]))
        result = run_monte_carlo("sstvs", 0.8, 1.2, config)
        assert result.quarantined == [2, 6]
        assert len(result.samples) == 8

    def test_resume_with_workers_fills_only_missing(
            self, stub_characterize):
        full = run_monte_carlo(
            "sstvs", 0.8, 1.2,
            MonteCarloConfig(runs=20, seed=9, plan=FAST_PLAN))
        partial = run_monte_carlo(
            "sstvs", 0.8, 1.2,
            MonteCarloConfig(runs=8, seed=9, plan=FAST_PLAN))
        resumed = run_monte_carlo(
            "sstvs", 0.8, 1.2,
            MonteCarloConfig(runs=20, seed=9, plan=FAST_PLAN, workers=3),
            resume=partial)
        assert resumed.samples == full.samples


class TestCampaignParity:
    def test_sweep_pool_matches_serial(self, stub_quick_delays):
        grid = SweepGrid.with_step(0.1)
        serial = sweep_delay_surface("sstvs", grid)
        pooled = sweep_delay_surface("sstvs", grid, workers=3)
        assert (pooled.rise == serial.rise).all()
        assert (pooled.fall == serial.fall).all()
        assert (pooled.functional == serial.functional).all()

    def test_sweep_progress_carries_cell_indices(self,
                                                 stub_quick_delays):
        grid = SweepGrid.with_step(0.2)
        seen = set()
        sweep_delay_surface("sstvs", grid, workers=2,
                            progress=lambda i, j, q: seen.add((i, j)))
        n = grid.vddi_values.size
        assert seen == {(i, j) for i in range(n) for j in range(n)}

    def test_functional_pool_matches_serial(self, stub_quick_delays):
        grid = SweepGrid.with_step(0.15)
        serial = validate_functionality("sstvs", grid)
        pooled = validate_functionality("sstvs", grid, workers=3)
        assert pooled.passed == serial.passed
        assert pooled.total == serial.total
        assert pooled.failures == serial.failures

    def test_pvt_pool_matches_serial(self, stub_characterize):
        serial = pvt_report("sstvs", 0.8, 1.2)
        pooled = pvt_report("sstvs", 0.8, 1.2, workers=3)
        assert [(p.corner, p.temperature_c) for p in pooled.points] \
            == [(p.corner, p.temperature_c) for p in serial.points]
        assert [p.metrics for p in pooled.points] \
            == [p.metrics for p in serial.points]


def traced_solve(params):
    """Module-level traced measurement: one real DC solve per point.

    Everything derives from ``params`` so pooled runs are bitwise
    identical to serial; the solve emits genuine spice-layer telemetry
    (newton.iterations, dc.* counters) rather than synthetic counts.
    """
    from repro.spice import Circuit, OperatingPoint
    from repro.spice.devices import Diode, Resistor, VoltageSource

    vdd, resistance = params
    ckt = Circuit("trace_point")
    ckt.add(VoltageSource("v", "in", "0", dc=vdd))
    ckt.add(Resistor("r", "in", "d", resistance))
    ckt.add(Diode("d1", "d", "0"))
    return OperatingPoint(ckt).run()["d"]


def traced_flaky(params):
    vdd, _ = params
    if vdd > 1.1:
        raise ValueError("diverged")
    return traced_solve(params)


def _traced_spec(n=100, measure=traced_solve, **overrides):
    points = [ExperimentPoint(i, (0.6 + 0.6 * (i % 10) / 10.0,
                                  1e3 * (1 + i % 7)))
              for i in range(n)]
    options = {"name": "trace_parity", "measure": measure,
               "points": points, "stage": "solve", "codec": "json",
               "trace": "collect"}
    options.update(overrides)
    return ExperimentSpec(**options)


def _deterministic(document):
    """Trace document minus wall-clock payloads (timers, *wall_s).

    Counters and value histograms are exact replicas of the solve
    sequence and must match bitwise across serial/pooled runs; wall
    times are real clock readings and cannot.
    """
    def clean(snap):
        return {"counters": snap["counters"],
                "histograms": {name: payload for name, payload
                               in snap["histograms"].items()
                               if not name.endswith("wall_s")}}

    return {"mode": document["mode"],
            "points": [{"index": p["index"], **clean(p)}
                       for p in document["points"]],
            "totals": clean(document["totals"])}


class TestTraceParity:
    """Satellite contract: trace merging never perturbs results, and
    pooled traces are deterministic-field identical to serial ones."""

    def test_pooled_run_bitwise_equal_serial_with_tracing(self):
        serial = run_experiment(_traced_spec())
        pooled = run_experiment(_traced_spec(workers=3, chunk_size=7))
        # The measured values themselves: exact float equality.
        assert pooled.values() == serial.values()
        assert [r.index for r in pooled.rows] \
            == [r.index for r in serial.rows]
        # And the merged traces, minus wall-clock noise.
        assert serial.trace["schema"] == TRACE_SCHEMA
        assert len(serial.trace["points"]) == 100
        assert _deterministic(pooled.trace) == _deterministic(serial.trace)

    def test_tracing_does_not_change_values(self):
        traced = run_experiment(_traced_spec(n=20))
        untraced = run_experiment(_traced_spec(n=20, trace=None))
        assert traced.values() == untraced.values()
        assert untraced.trace is None

    def test_quarantined_points_keep_partial_traces(self):
        spec = _traced_spec(n=20, measure=traced_flaky, workers=3,
                            chunk_size=4)
        pooled = run_experiment(spec)
        serial = run_experiment(
            _traced_spec(n=20, measure=traced_flaky))
        assert pooled.counts["err"] == serial.counts["err"] > 0
        assert _deterministic(pooled.trace) == _deterministic(serial.trace)

    def test_trace_roundtrips_through_store(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        result = run_experiment(_traced_spec(n=10), store=store)
        loaded = store.load(result.run_id)
        assert loaded.trace == result.trace
        # And through the plain JSON codec.
        assert ResultSet.from_json(result.to_json()).trace == result.trace
