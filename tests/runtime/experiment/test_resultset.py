"""ResultSet schema, codecs, and JSON round-trip (``-m experiment``)."""

import json
import math

import numpy as np
import pytest

from repro.core.characterize import QuickDelays
from repro.core.metrics import ShifterMetrics
from repro.errors import AnalysisError
from repro.runtime.experiment import (
    RESULTSET_SCHEMA, ResultRow, ResultSet, get_codec, register_codec,
)

pytestmark = pytest.mark.experiment


def _metrics(seed: float) -> ShifterMetrics:
    return ShifterMetrics(
        delay_rise=3.1e-10 * seed, delay_fall=1.7e-10 / seed,
        power_rise=3.3e-5, power_fall=2.5e-5,
        leakage_high=1.4e-9, leakage_low=5.6e-9, functional=True)


class TestCodecs:
    def test_metrics_roundtrip_bitwise(self):
        encode, decode = get_codec("metrics")
        original = _metrics(1.2345678901234567)
        back = decode(json.loads(json.dumps(encode(original))))
        assert back == original  # dataclass equality is field-bitwise

    def test_metrics_nan_roundtrip(self):
        encode, decode = get_codec("metrics")
        nan = float("nan")
        original = ShifterMetrics(nan, nan, nan, nan, nan, nan,
                                  functional=False)
        back = decode(json.loads(json.dumps(encode(original))))
        assert math.isnan(back.delay_rise)
        assert back.functional is False

    def test_quick_delays_roundtrip(self):
        encode, decode = get_codec("quick_delays")
        original = QuickDelays(3.0000000000000004e-10, 1.7e-10, True)
        back = decode(json.loads(json.dumps(encode(original))))
        assert back == original

    def test_unknown_codec_raises(self):
        with pytest.raises(AnalysisError):
            get_codec("no-such-codec")

    def test_register_codec_duplicate_rejected(self):
        with pytest.raises(AnalysisError):
            register_codec("json", lambda v: v, lambda v: v)


def _demo_resultset() -> ResultSet:
    rows = [
        ResultRow(ordinal=0, index=0, status="ok", value=_metrics(1.0)),
        ResultRow(ordinal=1, index=1, status="err",
                  stage="characterize", error="ValueError: boom"),
        ResultRow(ordinal=2, index=2, status="ok", value=_metrics(2.0)),
    ]
    return ResultSet(name="demo", codec="metrics",
                     metadata={"experiment": "demo", "seed": 7},
                     rows=rows)


class TestResultSet:
    def test_schema_tag(self):
        assert _demo_resultset().schema == RESULTSET_SCHEMA
        assert RESULTSET_SCHEMA == "repro-resultset-v1"

    def test_counts_and_accessors(self):
        rs = _demo_resultset()
        assert rs.counts == {"total": 3, "ok": 2, "err": 1,
                             "interrupted": False}
        assert [row.index for row in rs.ok_rows()] == [0, 2]
        assert len(rs.values()) == 2
        assert set(rs.value_by_index()) == {0, 2}

    def test_sample_failures_match_campaign_type(self):
        failures = _demo_resultset().sample_failures()
        assert len(failures) == 1
        assert failures[0].index == 1
        assert failures[0].stage == "characterize"
        assert "boom" in failures[0].error

    def test_json_roundtrip_bitwise(self):
        rs = _demo_resultset()
        document = json.loads(json.dumps(rs.to_json()))
        back = ResultSet.from_json(document)
        assert back.name == rs.name
        assert back.metadata == rs.metadata
        assert back.values() == rs.values()
        assert back.err_rows()[0].error == rs.err_rows()[0].error

    def test_from_json_rejects_unknown_schema(self):
        document = _demo_resultset().to_json()
        document["schema"] = "repro-resultset-v99"
        with pytest.raises(AnalysisError):
            ResultSet.from_json(document)

    def test_rows_sorted_by_ordinal_on_load(self):
        document = _demo_resultset().to_json()
        document["rows"].reverse()
        back = ResultSet.from_json(document)
        assert [row.ordinal for row in back.rows] == [0, 1, 2]

    def test_tuple_index_roundtrip(self):
        rows = [ResultRow(ordinal=0, index=(0, 1), status="ok",
                          value=1.5),
                ResultRow(ordinal=1, index=("ff", 27.0), status="ok",
                          value=2.5)]
        rs = ResultSet(name="grid", codec="json", rows=rows)
        back = ResultSet.from_json(json.loads(json.dumps(rs.to_json())))
        assert back.rows[0].index == (0, 1)
        assert back.rows[1].index == ("ff", 27.0)

    def test_float_payload_roundtrip_bitwise(self):
        values = [0.1 + 0.2, 1e-310, np.nextafter(1.0, 2.0)]
        rows = [ResultRow(ordinal=i, index=i, status="ok", value=v)
                for i, v in enumerate(values)]
        rs = ResultSet(name="floats", codec="json", rows=rows)
        back = ResultSet.from_json(json.loads(json.dumps(rs.to_json())))
        assert back.values() == values

    def test_pretty_mentions_counts(self):
        text = _demo_resultset().pretty()
        assert "3 rows" in text and "1 quarantined" in text
