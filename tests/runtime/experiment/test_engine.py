"""Engine semantics: specs, workers, quarantine, resume, interrupts."""

import pytest

from repro.errors import AnalysisError
from repro.runtime.experiment import (
    ExperimentPoint, ExperimentSpec, ResultRow, ResultSet, run_experiment,
)
from repro.runtime.faults import FaultPlan

pytestmark = pytest.mark.experiment


def square(x):
    """Module-level measurement (picklable for worker pools)."""
    return x * x


def flaky(x):
    if x == 3.0:
        raise ValueError("bad point")
    return x + 1


def _batch_flaky(params_list):
    """Module-level batch measure (picklable for sharded-batched)."""
    from repro.runtime.experiment import BatchPointFailure
    return [BatchPointFailure(stage="build", error="lane died")
            if p == 3.0 else p * p for p in params_list]


def _spec(measure=square, n=5, **overrides):
    points = [ExperimentPoint(i, float(i)) for i in range(n)]
    options = {"name": "unit", "measure": measure, "points": points,
               "stage": "measure", "codec": "json"}
    options.update(overrides)
    return ExperimentSpec(**options)


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(AnalysisError):
            run_experiment(_spec(workers=0))

    def test_duplicate_indices_rejected(self):
        spec = _spec()
        spec.points = [ExperimentPoint(0, 0.0), ExperimentPoint(0, 1.0)]
        with pytest.raises(AnalysisError):
            run_experiment(spec)

    def test_local_measure_rejected_for_pools(self):
        def local_measure(x):
            return x

        with pytest.raises(AnalysisError):
            run_experiment(_spec(measure=local_measure, workers=2))

    def test_local_measure_fine_serially(self):
        result = run_experiment(_spec(measure=lambda x: x, workers=1))
        assert result.values() == [float(i) for i in range(5)]


class TestExecution:
    def test_serial_run(self):
        result = run_experiment(_spec())
        assert result.values() == [float(i) ** 2 for i in range(5)]
        assert result.counts["err"] == 0
        assert not result.interrupted

    def test_parallel_identical_to_serial(self):
        serial = run_experiment(_spec(n=8))
        parallel = run_experiment(_spec(n=8, workers=3, chunk_size=2))
        assert parallel.values() == serial.values()
        assert [r.index for r in parallel.rows] \
            == [r.index for r in serial.rows]

    def test_rows_in_spec_order_regardless_of_completion(self):
        result = run_experiment(_spec(n=9, workers=4, chunk_size=1))
        assert [row.index for row in result.rows] == list(range(9))

    def test_progress_fires_per_success(self):
        seen = []
        run_experiment(_spec(), progress=lambda i, v: seen.append((i, v)))
        assert sorted(seen) == [(i, float(i) ** 2) for i in range(5)]

    def test_progress_exception_isolated_with_warning(self):
        def bad_progress(index, value):
            raise RuntimeError("observer crashed")

        with pytest.warns(RuntimeWarning, match="progress callback"):
            result = run_experiment(_spec(), progress=bad_progress)
        assert result.counts["ok"] == 5  # campaign unharmed

    def test_keyboard_interrupt_returns_partial(self):
        calls = []

        def interrupting(x):
            calls.append(x)
            if len(calls) == 3:
                raise KeyboardInterrupt
            return x

        result = run_experiment(_spec(measure=interrupting))
        assert result.interrupted
        assert result.counts["ok"] == 2


class TestQuarantine:
    def test_errors_become_rows(self):
        result = run_experiment(_spec(measure=flaky))
        assert result.counts == {"total": 5, "ok": 4, "err": 1,
                                 "interrupted": False}
        failure = result.sample_failures()[0]
        assert failure.index == 3
        assert failure.stage == "measure"
        assert "ValueError: bad point" in failure.error

    def test_quarantine_survives_the_pool_boundary(self):
        result = run_experiment(_spec(measure=flaky, workers=2))
        assert result.counts["err"] == 1
        assert result.sample_failures()[0].index == 3

    def test_max_failures_aborts(self):
        with pytest.raises(AnalysisError, match="max_failures"):
            run_experiment(_spec(measure=flaky, max_failures=0))

    def test_fault_plan_injects_and_forces_serial(self):
        spec = _spec(faults=FaultPlan.fail_samples([1, 4]), workers=8)
        result = run_experiment(spec)
        failures = result.sample_failures()
        assert [f.index for f in failures] == [1, 4]
        assert all(f.stage == "injected" for f in failures)


class TestResume:
    def test_resume_runs_only_missing_points(self):
        calls = []

        def tracking(x):
            calls.append(x)
            return x * x

        first = run_experiment(_spec(measure=tracking, n=3))
        partial = ResultSet(name="unit", codec="json",
                            rows=list(first.rows))
        calls.clear()
        resumed = run_experiment(_spec(measure=tracking, n=5),
                                 resume=partial)
        assert calls == [3.0, 4.0]
        assert resumed.values() == [float(i) ** 2 for i in range(5)]

    def test_resume_carries_quarantined_rows(self):
        partial = ResultSet(name="unit", codec="json", rows=[
            ResultRow(ordinal=0, index=2, status="err", stage="measure",
                      error="ValueError: old failure")])
        resumed = run_experiment(_spec(), resume=partial)
        assert resumed.counts["ok"] == 4
        assert resumed.sample_failures()[0].index == 2

    def test_resume_name_mismatch_rejected(self):
        stranger = ResultSet(name="other-experiment", codec="json")
        with pytest.raises(AnalysisError, match="other-experiment"):
            run_experiment(_spec(), resume=stranger)

    def test_resume_wrong_type_rejected(self):
        with pytest.raises(AnalysisError):
            run_experiment(_spec(), resume={"rows": []})

    def test_unknown_resume_indices_sort_after_live_points(self):
        partial = ResultSet(name="unit", codec="json", rows=[
            ResultRow(ordinal=0, index=99, status="ok", value=0.5)])
        resumed = run_experiment(_spec(), resume=partial)
        assert [row.index for row in resumed.rows] \
            == [0, 1, 2, 3, 4, 99]


class TestBatchedBackend:
    """The SPMD dispatch: chunking, per-lane quarantine, eviction."""

    @staticmethod
    def _batch_square(params_list):
        return [p * p for p in params_list]

    def test_backend_name_validated(self):
        with pytest.raises(AnalysisError, match="backend"):
            run_experiment(_spec(backend="gpu"))

    def test_batched_requires_batch_measure(self):
        with pytest.raises(AnalysisError, match="batch_measure"):
            run_experiment(_spec(backend="batched"))

    def test_sharded_batched_matches_serial(self):
        # batched × workers composes: chunks become per-worker shards
        # and the results are bitwise those of the serial campaign.
        serial = run_experiment(_spec(n=9))
        sharded = run_experiment(_spec(n=9, backend="batched",
                                       batch_width=2, workers=3,
                                       batch_measure=self._batch_square))
        assert sharded.values() == serial.values()
        assert [r.index for r in sharded.rows] \
            == [r.index for r in serial.rows]

    def test_sharded_batched_requires_module_level_batch_measure(self):
        def local_batch(params_list):
            return [p * p for p in params_list]

        with pytest.raises(AnalysisError, match="module-level"):
            run_experiment(_spec(backend="batched", workers=2,
                                 batch_measure=local_batch))

    def test_sharded_quarantine_survives_the_pool_boundary(self):
        result = run_experiment(_spec(n=6, measure=flaky,
                                      backend="batched", batch_width=2,
                                      workers=2,
                                      batch_measure=_batch_flaky))
        assert result.counts["ok"] == 5
        failure = result.sample_failures()[0]
        assert failure.index == 3
        assert failure.stage == "build"
        assert "lane died" in failure.error

    def test_batch_width_must_be_positive(self):
        with pytest.raises(AnalysisError, match="batch_width"):
            run_experiment(_spec(backend="batched", batch_width=0,
                                 batch_measure=self._batch_square))

    def test_resolved_backend_defaults(self):
        assert _spec().resolved_backend() == "serial"
        assert _spec(workers=3).resolved_backend() == "pool"
        assert _spec(backend="serial",
                     workers=3).resolved_backend() == "serial"
        assert _spec(backend="batched").resolved_backend() == "batched"

    def test_batched_identical_to_serial(self):
        serial = run_experiment(_spec(n=7))
        batched = run_experiment(_spec(
            n=7, backend="batched", batch_width=3,
            batch_measure=self._batch_square))
        assert batched.values() == serial.values()
        assert [r.index for r in batched.rows] \
            == [r.index for r in serial.rows]

    def test_chunking_respects_batch_width(self):
        widths = []

        def recording(params_list):
            widths.append(len(params_list))
            return [p * p for p in params_list]

        run_experiment(_spec(n=7, backend="batched", batch_width=3,
                             batch_measure=recording))
        assert widths == [3, 3, 1]

    def test_batch_point_failure_is_quarantined(self):
        from repro.runtime.experiment import BatchPointFailure

        def partial(params_list):
            return [BatchPointFailure(stage="build", error="lane died")
                    if p == 2.0 else p * p for p in params_list]

        result = run_experiment(_spec(n=5, backend="batched",
                                      batch_measure=partial))
        assert result.counts == {"total": 5, "ok": 4, "err": 1,
                                 "interrupted": False}
        failure = result.sample_failures()[0]
        assert failure.index == 2
        assert failure.stage == "build"
        assert "lane died" in failure.error

    def test_raising_chunk_evicted_to_serial(self):
        # A whole-call crash (e.g. the lanes cannot be stacked) must
        # not lose the chunk: every point re-runs through the serial
        # measure and the campaign still matches a serial run.
        def exploding(params_list):
            if 2.0 in params_list:
                raise RuntimeError("stack refused")
            return [p * p for p in params_list]

        result = run_experiment(_spec(n=6, backend="batched",
                                      batch_width=2,
                                      batch_measure=exploding))
        assert result.counts["err"] == 0
        assert result.values() == [float(i) ** 2 for i in range(6)]

    def test_wrong_length_reply_evicted_to_serial(self):
        def short(params_list):
            return [p * p for p in params_list][:-1]

        result = run_experiment(_spec(n=4, backend="batched",
                                      batch_width=2,
                                      batch_measure=short))
        assert result.counts["err"] == 0
        assert result.values() == [float(i) ** 2 for i in range(4)]

    def test_serial_fallback_quarantines_real_failures(self):
        # Eviction re-runs the serial measure; a point that genuinely
        # fails there lands in quarantine with the serial stage label.
        def exploding(params_list):
            raise RuntimeError("stack refused")

        result = run_experiment(_spec(n=5, measure=flaky,
                                      backend="batched",
                                      batch_measure=exploding))
        assert result.counts["ok"] == 4
        failure = result.sample_failures()[0]
        assert failure.index == 3
        assert failure.stage == "measure"

    def test_max_failures_enforced_for_batched_lanes(self):
        from repro.runtime.experiment import BatchPointFailure

        def all_dead(params_list):
            return [BatchPointFailure(stage="build", error="nope")
                    for _ in params_list]

        with pytest.raises(AnalysisError, match="max_failures"):
            run_experiment(_spec(n=5, backend="batched",
                                 batch_measure=all_dead,
                                 max_failures=1))

    def test_resume_runs_only_missing_points_batched(self):
        seen = []

        def recording(params_list):
            seen.extend(params_list)
            return [p * p for p in params_list]

        first = run_experiment(_spec(n=3))
        spec = _spec(n=6, backend="batched", batch_measure=recording)
        result = run_experiment(spec, resume=first)
        assert sorted(seen) == [3.0, 4.0, 5.0]
        assert result.values() == [float(i) ** 2 for i in range(6)]

    def test_tracing_forces_per_point_path(self):
        calls = []

        def recording(params_list):
            calls.append(list(params_list))
            return [p * p for p in params_list]

        result = run_experiment(_spec(n=3, backend="batched",
                                      batch_measure=recording,
                                      trace="collect"))
        assert calls == []  # traced campaigns stay per-point
        assert result.values() == [float(i) ** 2 for i in range(3)]
