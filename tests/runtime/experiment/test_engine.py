"""Engine semantics: specs, workers, quarantine, resume, interrupts."""

import pytest

from repro.errors import AnalysisError
from repro.runtime.experiment import (
    ExperimentPoint, ExperimentSpec, ResultRow, ResultSet, run_experiment,
)
from repro.runtime.faults import FaultPlan

pytestmark = pytest.mark.experiment


def square(x):
    """Module-level measurement (picklable for worker pools)."""
    return x * x


def flaky(x):
    if x == 3.0:
        raise ValueError("bad point")
    return x + 1


def _spec(measure=square, n=5, **overrides):
    points = [ExperimentPoint(i, float(i)) for i in range(n)]
    options = {"name": "unit", "measure": measure, "points": points,
               "stage": "measure", "codec": "json"}
    options.update(overrides)
    return ExperimentSpec(**options)


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(AnalysisError):
            run_experiment(_spec(workers=0))

    def test_duplicate_indices_rejected(self):
        spec = _spec()
        spec.points = [ExperimentPoint(0, 0.0), ExperimentPoint(0, 1.0)]
        with pytest.raises(AnalysisError):
            run_experiment(spec)

    def test_local_measure_rejected_for_pools(self):
        def local_measure(x):
            return x

        with pytest.raises(AnalysisError):
            run_experiment(_spec(measure=local_measure, workers=2))

    def test_local_measure_fine_serially(self):
        result = run_experiment(_spec(measure=lambda x: x, workers=1))
        assert result.values() == [float(i) for i in range(5)]


class TestExecution:
    def test_serial_run(self):
        result = run_experiment(_spec())
        assert result.values() == [float(i) ** 2 for i in range(5)]
        assert result.counts["err"] == 0
        assert not result.interrupted

    def test_parallel_identical_to_serial(self):
        serial = run_experiment(_spec(n=8))
        parallel = run_experiment(_spec(n=8, workers=3, chunk_size=2))
        assert parallel.values() == serial.values()
        assert [r.index for r in parallel.rows] \
            == [r.index for r in serial.rows]

    def test_rows_in_spec_order_regardless_of_completion(self):
        result = run_experiment(_spec(n=9, workers=4, chunk_size=1))
        assert [row.index for row in result.rows] == list(range(9))

    def test_progress_fires_per_success(self):
        seen = []
        run_experiment(_spec(), progress=lambda i, v: seen.append((i, v)))
        assert sorted(seen) == [(i, float(i) ** 2) for i in range(5)]

    def test_progress_exception_isolated_with_warning(self):
        def bad_progress(index, value):
            raise RuntimeError("observer crashed")

        with pytest.warns(RuntimeWarning, match="progress callback"):
            result = run_experiment(_spec(), progress=bad_progress)
        assert result.counts["ok"] == 5  # campaign unharmed

    def test_keyboard_interrupt_returns_partial(self):
        calls = []

        def interrupting(x):
            calls.append(x)
            if len(calls) == 3:
                raise KeyboardInterrupt
            return x

        result = run_experiment(_spec(measure=interrupting))
        assert result.interrupted
        assert result.counts["ok"] == 2


class TestQuarantine:
    def test_errors_become_rows(self):
        result = run_experiment(_spec(measure=flaky))
        assert result.counts == {"total": 5, "ok": 4, "err": 1,
                                 "interrupted": False}
        failure = result.sample_failures()[0]
        assert failure.index == 3
        assert failure.stage == "measure"
        assert "ValueError: bad point" in failure.error

    def test_quarantine_survives_the_pool_boundary(self):
        result = run_experiment(_spec(measure=flaky, workers=2))
        assert result.counts["err"] == 1
        assert result.sample_failures()[0].index == 3

    def test_max_failures_aborts(self):
        with pytest.raises(AnalysisError, match="max_failures"):
            run_experiment(_spec(measure=flaky, max_failures=0))

    def test_fault_plan_injects_and_forces_serial(self):
        spec = _spec(faults=FaultPlan.fail_samples([1, 4]), workers=8)
        result = run_experiment(spec)
        failures = result.sample_failures()
        assert [f.index for f in failures] == [1, 4]
        assert all(f.stage == "injected" for f in failures)


class TestResume:
    def test_resume_runs_only_missing_points(self):
        calls = []

        def tracking(x):
            calls.append(x)
            return x * x

        first = run_experiment(_spec(measure=tracking, n=3))
        partial = ResultSet(name="unit", codec="json",
                            rows=list(first.rows))
        calls.clear()
        resumed = run_experiment(_spec(measure=tracking, n=5),
                                 resume=partial)
        assert calls == [3.0, 4.0]
        assert resumed.values() == [float(i) ** 2 for i in range(5)]

    def test_resume_carries_quarantined_rows(self):
        partial = ResultSet(name="unit", codec="json", rows=[
            ResultRow(ordinal=0, index=2, status="err", stage="measure",
                      error="ValueError: old failure")])
        resumed = run_experiment(_spec(), resume=partial)
        assert resumed.counts["ok"] == 4
        assert resumed.sample_failures()[0].index == 2

    def test_resume_name_mismatch_rejected(self):
        stranger = ResultSet(name="other-experiment", codec="json")
        with pytest.raises(AnalysisError, match="other-experiment"):
            run_experiment(_spec(), resume=stranger)

    def test_resume_wrong_type_rejected(self):
        with pytest.raises(AnalysisError):
            run_experiment(_spec(), resume={"rows": []})

    def test_unknown_resume_indices_sort_after_live_points(self):
        partial = ResultSet(name="unit", codec="json", rows=[
            ResultRow(ordinal=0, index=99, status="ok", value=0.5)])
        resumed = run_experiment(_spec(), resume=partial)
        assert [row.index for row in resumed.rows] \
            == [0, 1, 2, 3, 4, 99]
