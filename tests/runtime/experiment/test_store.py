"""Artifact store: manifests, provenance, reload, truncated resume."""

import json

import pytest

from repro.errors import AnalysisError
from repro.runtime.experiment import (
    ArtifactStore, ExperimentPoint, ExperimentSpec, MANIFEST_SCHEMA,
    collect_provenance, git_sha, pdk_fingerprint, run_experiment,
)

pytestmark = pytest.mark.experiment


def cube(x):
    return x * x * x


def sometimes(x):
    if x == 2.0:
        raise RuntimeError("solver escape")
    return x


def _spec(measure=cube, n=4, **overrides):
    points = [ExperimentPoint(i, float(i)) for i in range(n)]
    options = {"name": "store-demo", "measure": measure,
               "points": points, "codec": "json", "seed": 42,
               "metadata": {"experiment": "store-demo"}}
    options.update(overrides)
    return ExperimentSpec(**options)


class TestProvenance:
    def test_pdk_fingerprint_stable(self):
        assert pdk_fingerprint() == pdk_fingerprint()
        assert len(pdk_fingerprint()) == 16

    def test_git_sha_in_repo(self):
        sha = git_sha()
        assert sha is None or len(sha) == 40

    def test_collect_provenance_fields(self):
        prov = collect_provenance(_spec(workers=3), wall_s=1.25)
        assert prov["seed"] == 42
        assert prov["workers"] == 3
        assert prov["wall_s"] == 1.25
        assert prov["pdk_fingerprint"] == pdk_fingerprint()
        assert isinstance(prov["retry_policy"], dict)
        assert "gmin_ladder" in prov["retry_policy"]
        assert prov["python"] and prov["numpy"] and prov["platform"]
        assert prov["written_utc"]


class TestWriteAndLoad:
    def test_run_writes_manifest_and_rows(self, tmp_path):
        store = ArtifactStore(tmp_path)
        result = run_experiment(_spec(), store=store)
        assert result.run_id
        run_dir = store.path(result.run_id)
        assert (run_dir / "manifest.json").is_file()
        assert (run_dir / "rows.jsonl").is_file()

        manifest = store.manifest(result.run_id)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["name"] == "store-demo"
        assert manifest["counts"]["ok"] == 4
        assert manifest["provenance"]["seed"] == 42
        assert manifest["provenance"]["wall_s"] > 0
        assert manifest["resultset"]["codec"] == "json"

    def test_store_accepts_plain_path(self, tmp_path):
        result = run_experiment(_spec(), store=str(tmp_path))
        assert (tmp_path / result.run_id / "manifest.json").is_file()

    def test_reload_bitwise(self, tmp_path):
        store = ArtifactStore(tmp_path)
        result = run_experiment(_spec(), store=store)
        loaded = store.load(result.run_id)
        assert loaded.values() == result.values()
        assert loaded.metadata == result.metadata
        assert loaded.run_id == result.run_id
        assert not loaded.interrupted

    def test_err_rows_survive_reload(self, tmp_path):
        store = ArtifactStore(tmp_path)
        result = run_experiment(_spec(measure=sometimes), store=store)
        loaded = store.load(result.run_id)
        failure = loaded.sample_failures()[0]
        assert failure.index == 2
        assert "RuntimeError: solver escape" in failure.error

    def test_list_runs_oldest_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = run_experiment(_spec(), store=store)
        second = run_experiment(_spec(), store=store)
        listed = [m["run_id"] for m in store.list_runs()]
        assert listed.index(first.run_id) \
            < listed.index(second.run_id)

    def test_distinct_run_ids(self, tmp_path):
        store = ArtifactStore(tmp_path)
        a = run_experiment(_spec(), store=store)
        b = run_experiment(_spec(), store=store)
        assert a.run_id != b.run_id

    def test_missing_run_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="no run"):
            ArtifactStore(tmp_path).manifest("nope")

    def test_schema_mismatch_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        result = run_experiment(_spec(), store=store)
        manifest_path = store.path(result.run_id) / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["resultset"]["schema"] = "repro-resultset-v99"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(AnalysisError, match="v99"):
            store.load(result.run_id)


class TestTruncatedResume:
    def test_truncated_rows_load_as_interrupted_prefix(self, tmp_path):
        store = ArtifactStore(tmp_path)
        result = run_experiment(_spec(n=6), store=store)
        rows_path = store.path(result.run_id) / "rows.jsonl"
        lines = rows_path.read_text().splitlines(keepends=True)
        # Keep three whole rows plus a torn fourth line.
        rows_path.write_text("".join(lines[:3]) + lines[3][:10])

        partial = store.load(result.run_id)
        assert partial.interrupted
        assert len(partial.rows) == 3

    def test_resume_from_truncated_artifact_completes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        full = run_experiment(_spec(n=6), store=store)
        rows_path = store.path(full.run_id) / "rows.jsonl"
        lines = rows_path.read_text().splitlines(keepends=True)
        rows_path.write_text("".join(lines[:3]))

        calls = []

        def tracking(x):
            calls.append(x)
            return x * x * x

        partial = store.load(full.run_id)
        resumed = run_experiment(_spec(measure=tracking, n=6),
                                 resume=partial, store=store,
                                 run_id=full.run_id)
        assert calls == [3.0, 4.0, 5.0]
        assert resumed.values() == full.values()
        assert not resumed.interrupted
        # The artifact was healed in place under the same run id.
        healed = store.load(full.run_id)
        assert healed.values() == full.values()
        assert not healed.interrupted


class TestRejectQuarantine:
    def _corrupt_interior(self, store, run_id, line_no=2):
        rows_path = store.path(run_id) / "rows.jsonl"
        lines = rows_path.read_text().splitlines(keepends=True)
        lines[line_no - 1] = '{"ordinal": 1, "index": 1, "sta%%GARBAGE\n'
        rows_path.write_text("".join(lines))
        return rows_path

    def test_interior_corruption_is_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        full = run_experiment(_spec(n=6), store=store)
        self._corrupt_interior(store, full.run_id)

        with pytest.warns(RuntimeWarning, match="recompute and heal"):
            partial = store.load(full.run_id)
        # The corrupt row is dropped, every other row still loads.
        assert partial.interrupted
        assert len(partial.rows) == 5
        assert 1.0 not in [row.value for row in partial.rows]

        rejects = store.path(full.run_id) / "rows.rejects.jsonl"
        quarantined = [json.loads(line)
                       for line in rejects.read_text().splitlines()]
        assert len(quarantined) == 1
        assert quarantined[0]["line"] == 2
        assert "GARBAGE" in quarantined[0]["raw"]

    def test_resume_heals_the_quarantined_row(self, tmp_path):
        store = ArtifactStore(tmp_path)
        full = run_experiment(_spec(n=6), store=store)
        self._corrupt_interior(store, full.run_id)

        with pytest.warns(RuntimeWarning):
            partial = store.load(full.run_id)
        resumed = run_experiment(_spec(n=6), resume=partial,
                                 store=store, run_id=full.run_id)
        assert resumed.values() == full.values()
        assert not resumed.interrupted
        healed = store.load(full.run_id)
        assert healed.values() == full.values()
        assert not healed.interrupted

    def test_duplicate_indices_first_valid_wins(self, tmp_path):
        store = ArtifactStore(tmp_path)
        full = run_experiment(_spec(n=3), store=store)
        rows_path = store.path(full.run_id) / "rows.jsonl"
        lines = rows_path.read_text().splitlines(keepends=True)
        duplicate = json.loads(lines[0])
        duplicate["value"] = -999.0
        rows_path.write_text("".join(lines)
                             + json.dumps(duplicate) + "\n")

        loaded = store.load(full.run_id)
        assert len(loaded.rows) == 3
        assert loaded.values() == full.values()
