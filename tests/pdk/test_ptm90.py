"""Tests for the PTM-90nm-like model cards and PDK factory."""

import pytest

from repro.errors import ModelError
from repro.pdk import HIGH_VT, LOW_VT, NOMINAL, Pdk, make_card
from repro.pdk.ptm90 import THRESHOLDS, TNOM_K, VT_TEMPCO


class TestMakeCard:
    def test_paper_thresholds(self):
        # Section 3 of the paper quotes these exact values.
        assert make_card("n", NOMINAL).vto == pytest.approx(0.39)
        assert make_card("p", NOMINAL).vto == pytest.approx(0.35)
        assert make_card("n", HIGH_VT).vto == pytest.approx(0.49)
        assert make_card("p", HIGH_VT).vto == pytest.approx(0.44)
        # Low-Vt NMOS: paper quotes 0.19 V (BSIM); our card carries
        # 0.13 V to calibrate the EKV follower level (see ptm90.py).
        assert make_card("n", LOW_VT).vto == pytest.approx(0.13)

    def test_bad_polarity(self):
        with pytest.raises(ModelError):
            make_card("x")

    def test_bad_flavor(self):
        with pytest.raises(ModelError):
            make_card("n", "medium_rare")

    def test_vt_decreases_with_temperature(self):
        cold = make_card("n", NOMINAL, temperature_c=27.0)
        hot = make_card("n", NOMINAL, temperature_c=90.0)
        assert hot.vto < cold.vto
        assert cold.vto - hot.vto == pytest.approx(VT_TEMPCO * 63.0,
                                                   rel=1e-6)

    def test_mobility_decreases_with_temperature(self):
        cold = make_card("n", NOMINAL, temperature_c=27.0)
        hot = make_card("n", NOMINAL, temperature_c=90.0)
        assert hot.u0 < cold.u0

    def test_card_temperature_in_kelvin(self):
        card = make_card("n", NOMINAL, temperature_c=27.0)
        assert card.temperature == pytest.approx(TNOM_K)

    def test_extreme_temperature_rejected(self):
        # Vt would collapse to nothing.
        with pytest.raises(ModelError):
            make_card("n", LOW_VT, temperature_c=400.0)

    def test_gate_leak_configured(self):
        assert make_card("n").gate_leak > 0


class TestPdkFactory:
    def test_card_caching(self):
        pdk = Pdk()
        assert pdk.card("n") is pdk.card("n")

    def test_mosfet_defaults_drawn_length(self):
        pdk = Pdk()
        m = pdk.mosfet("m1", "d", "g", "s", "b", "n", 0.2e-6)
        assert m.l == pytest.approx(pdk.ldrawn)

    def test_mosfet_explicit_length(self):
        pdk = Pdk()
        m = pdk.mosfet("m1", "d", "g", "s", "b", "n", 0.2e-6, 0.3e-6)
        assert m.l == pytest.approx(0.3e-6)

    def test_flavor_selects_threshold(self):
        pdk = Pdk()
        hi = pdk.mosfet("a", "d", "g", "s", "b", "n", 1e-6,
                        flavor=HIGH_VT)
        lo = pdk.mosfet("b", "d", "g", "s", "b", "n", 1e-6,
                        flavor=LOW_VT)
        assert hi.params.vto > lo.params.vto

    def test_at_temperature(self):
        pdk = Pdk(27.0)
        hot = pdk.at_temperature(90.0)
        assert hot.temperature_c == 90.0
        assert type(hot) is type(pdk)

    def test_hot_device_leaks_more(self):
        cold = Pdk(27.0).mosfet("m", "d", "g", "s", "b", "n", 0.2e-6)
        hot = Pdk(90.0).mosfet("m", "d", "g", "s", "b", "n", 0.2e-6)
        assert hot.drain_current(1.2, 0.0, 0.0, 0.0) > \
            5 * cold.drain_current(1.2, 0.0, 0.0, 0.0)

    def test_hot_device_drives_less(self):
        cold = Pdk(27.0).mosfet("m", "d", "g", "s", "b", "n", 0.2e-6)
        hot = Pdk(90.0).mosfet("m", "d", "g", "s", "b", "n", 0.2e-6)
        assert hot.drain_current(1.2, 1.2, 0.0, 0.0) < \
            cold.drain_current(1.2, 1.2, 0.0, 0.0)

    def test_all_threshold_pairs_defined(self):
        for polarity in ("n", "p"):
            for flavor in (NOMINAL, HIGH_VT, LOW_VT):
                assert (polarity, flavor) in THRESHOLDS
