"""The named PDK-node registry and the second (lv22) node."""

import pytest

from repro.errors import ModelError
from repro.pdk import CornerPdk, Pdk, VariedPdk, make_pdk
from repro.pdk import registry as pdk_registry
from repro.pdk.registry import (
    PdkNode, get_node, node_fingerprint, node_names, register_node,
)
from repro.pdk.variation import VariationSpec

import numpy as np


class TestRegistry:
    def test_builtin_nodes_registered(self):
        assert "ptm90" in node_names()
        assert "lv22" in node_names()

    def test_unknown_node_error_lists_live_registry(self):
        with pytest.raises(ModelError) as err:
            get_node("tsmc7")
        message = str(err.value)
        assert "tsmc7" in message
        for name in node_names():
            assert name in message

    def test_duplicate_registration_guard(self):
        node = get_node("ptm90")
        with pytest.raises(ModelError):
            register_node(node)
        # replace=True is the explicit override path.
        assert register_node(node, replace=True) is node

    def test_late_registered_node_is_addressable(self):
        base = get_node("ptm90")
        custom = PdkNode(
            name="testnode", description="registry test double",
            make_card=base.make_card, flavors=base.flavors,
            lmin=base.lmin, ldrawn=base.ldrawn,
            vdd_nominal=base.vdd_nominal, vdd_min=base.vdd_min,
            vdd_max=base.vdd_max, default_pair=base.default_pair)
        register_node(custom)
        try:
            assert get_node("testnode") is custom
            assert make_pdk("testnode").node == "testnode"
            with pytest.raises(ModelError) as err:
                get_node("nonesuch")
            assert "testnode" in str(err.value)
        finally:
            del pdk_registry._NODES["testnode"]


class TestFingerprints:
    def test_nodes_have_distinct_fingerprints(self):
        assert node_fingerprint("ptm90") != node_fingerprint("lv22")

    def test_ptm90_fingerprint_is_byte_compatible(self):
        # Pinned to the digest the single-node fingerprint produced
        # before the registry existed: ptm90 cache entries and stored
        # manifests must stay valid across the refactor.
        assert node_fingerprint("ptm90") == "ad0f2b4dbc1337e0"

    def test_fingerprint_is_stable(self):
        assert node_fingerprint("lv22") == node_fingerprint("lv22")


class TestNodeThreading:
    def test_make_pdk_binds_node(self):
        pdk = make_pdk("lv22", temperature_c=60.0)
        assert pdk.node == "lv22"
        assert pdk.temperature_c == 60.0

    def test_default_node_is_ptm90(self):
        assert Pdk().node == "ptm90"
        assert make_pdk().node == "ptm90"

    def test_cards_differ_between_nodes(self):
        ptm90 = Pdk()
        lv22 = make_pdk("lv22")
        assert ptm90.card("n").vto != lv22.card("n").vto
        assert ptm90.lmin != lv22.lmin

    def test_at_temperature_preserves_node(self):
        assert make_pdk("lv22").at_temperature(90.0).node == "lv22"

    def test_varied_pdk_carries_node(self):
        rng = np.random.default_rng(7)
        varied = VariedPdk(rng, VariationSpec(), node="lv22")
        assert varied.node == "lv22"

    def test_corner_pdk_carries_node(self):
        corner = CornerPdk("ss", node="lv22")
        assert corner.node == "lv22"
        assert corner.at_temperature(90.0).node == "lv22"
        assert corner.at_temperature(90.0).corner == "ss"

    def test_repr_names_the_node(self):
        assert "lv22" in repr(make_pdk("lv22"))
        assert "lv22" in repr(CornerPdk("ff", node="lv22"))


class TestLv22Node:
    def test_supply_conventions(self):
        node = get_node("lv22")
        assert node.vdd_nominal == 0.5
        assert node.vdd_min < node.default_pair[0] <= node.vdd_max
        assert node.default_pair == (0.35, 0.5)

    def test_geometry_is_scaled_down(self):
        assert get_node("lv22").lmin < get_node("ptm90").lmin

    def test_thresholds_are_subhalf_volt(self):
        pdk = make_pdk("lv22")
        assert 0 < pdk.card("n").vto < 0.3
        assert 0 < abs(pdk.card("p").vto) < 0.3
