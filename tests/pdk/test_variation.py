"""Tests for Monte Carlo variation sampling."""

import numpy as np
import pytest

from repro.pdk import Pdk, VariationSpec, VariedPdk
from repro.pdk.ptm90 import LMIN


class TestVariationSpec:
    def test_paper_sigma_wl(self):
        spec = VariationSpec()
        assert spec.sigma_wl == pytest.approx(0.0334 * LMIN)

    def test_negative_sigma_rejected(self):
        from repro.errors import ModelError
        with pytest.raises(ModelError):
            VariationSpec(sigma_vt_fraction=-0.1).validate()


class TestVariedPdk:
    def _varied(self, seed=42):
        return VariedPdk(np.random.default_rng(seed))

    def test_device_parameters_perturbed(self):
        pdk = self._varied()
        m = pdk.mosfet("m1", "d", "g", "s", "b", "n", 0.2e-6)
        nominal = Pdk().mosfet("m1", "d", "g", "s", "b", "n", 0.2e-6)
        assert m.w != nominal.w or m.params.vto != nominal.params.vto

    def test_reproducible_with_seed(self):
        a = self._varied(7).mosfet("m1", "d", "g", "s", "b", "n", 0.2e-6)
        b = self._varied(7).mosfet("m1", "d", "g", "s", "b", "n", 0.2e-6)
        assert a.w == b.w
        assert a.params.vto == b.params.vto

    def test_different_seeds_differ(self):
        a = self._varied(7).mosfet("m1", "d", "g", "s", "b", "n", 0.2e-6)
        b = self._varied(8).mosfet("m1", "d", "g", "s", "b", "n", 0.2e-6)
        assert (a.w, a.params.vto) != (b.w, b.params.vto)

    def test_devices_independent(self):
        pdk = self._varied()
        a = pdk.mosfet("a", "d", "g", "s", "b", "n", 0.2e-6)
        b = pdk.mosfet("b", "d", "g", "s", "b", "n", 0.2e-6)
        assert (a.w, a.params.vto) != (b.w, b.params.vto)

    def test_draw_log_records(self):
        pdk = self._varied()
        pdk.mosfet("m1", "d", "g", "s", "b", "n", 0.2e-6)
        assert "m1" in pdk.draw_log
        assert len(pdk.draw_log["m1"]) == 3

    def test_sample_statistics(self):
        # Empirical sigma over many draws matches the spec.
        pdk = self._varied(3)
        widths = [pdk.mosfet(f"m{i}", "d", "g", "s", "b", "n",
                             0.2e-6).w for i in range(800)]
        sigma = np.std(np.asarray(widths) - 0.2e-6)
        assert sigma == pytest.approx(VariationSpec().sigma_wl, rel=0.15)

    def test_vt_sigma_relative(self):
        pdk = self._varied(4)
        vts = [pdk.mosfet(f"m{i}", "d", "g", "s", "b", "n", 0.2e-6)
               .params.vto for i in range(800)]
        sigma = np.std(vts)
        assert sigma == pytest.approx(0.0334 * 0.39, rel=0.15)

    def test_widths_never_collapse(self):
        spec = VariationSpec(sigma_wl_fraction_of_lmin=10.0)
        pdk = VariedPdk(np.random.default_rng(0), spec)
        for i in range(50):
            m = pdk.mosfet(f"m{i}", "d", "g", "s", "b", "n", 0.2e-6)
            assert m.w > 0
            assert m.l > 0
            assert m.params.vto > 0


class TestCorners:
    def test_tt_is_nominal(self):
        from repro.pdk import CornerPdk
        tt = CornerPdk("tt").mosfet("m", "d", "g", "s", "b", "n", 0.2e-6)
        nominal = Pdk().mosfet("m", "d", "g", "s", "b", "n", 0.2e-6)
        assert tt.params.vto == pytest.approx(nominal.params.vto)

    def test_ff_faster_than_ss(self):
        from repro.pdk import CornerPdk
        ff = CornerPdk("ff").mosfet("m", "d", "g", "s", "b", "n", 0.2e-6)
        ss = CornerPdk("ss").mosfet("m", "d", "g", "s", "b", "n", 0.2e-6)
        assert ff.params.vto < ss.params.vto
        assert ff.drain_current(1.2, 1.2, 0, 0) > \
            ss.drain_current(1.2, 1.2, 0, 0)

    def test_fs_polarity_split(self):
        from repro.pdk import CornerPdk
        pdk = CornerPdk("fs")
        n = pdk.mosfet("a", "d", "g", "s", "b", "n", 0.2e-6)
        p = pdk.mosfet("b", "d", "g", "s", "b", "p", 0.2e-6)
        nominal = Pdk()
        assert n.params.vto < nominal.card("n").vto
        assert p.params.vto > nominal.card("p").vto

    def test_unknown_corner(self):
        from repro.errors import ModelError
        from repro.pdk import CornerPdk
        with pytest.raises(ModelError):
            CornerPdk("zz")
