"""Tests for the analytical area estimator."""

import pytest

from repro.cells import add_combined_vs, add_inverter, add_sstvs
from repro.layout import (
    PAPER_SSTVS_AREA, estimate_cell_area, estimate_circuit_area,
    estimate_mosfet_area,
)
from repro.spice import Circuit


class TestDeviceArea:
    def test_single_device(self, pdk):
        m = pdk.mosfet("m", "d", "g", "s", "b", "n", 0.2e-6, 0.1e-6)
        area = estimate_mosfet_area(m)
        assert area == pytest.approx(0.2e-6 * 0.3e-6)

    def test_multiplier_scales(self, pdk):
        m = pdk.mosfet("m", "d", "g", "s", "b", "n", 0.2e-6, 0.1e-6,
                       m=3)
        assert estimate_mosfet_area(m) == pytest.approx(
            3 * 0.2e-6 * 0.3e-6)


class TestCircuitArea:
    def test_empty_circuit_zero(self):
        est = estimate_circuit_area(Circuit("empty"))
        assert est.total_area == 0.0
        assert est.device_count == 0

    def test_overhead_applied(self, pdk):
        ckt = Circuit("t")
        ckt.add(pdk.mosfet("m", "d", "g", "s", "0", "n", 0.2e-6))
        est = estimate_circuit_area(ckt, overhead=2.0)
        assert est.total_area == pytest.approx(2.0 * est.device_area)

    def test_width_times_height_is_area(self, pdk):
        ckt = Circuit("t")
        ckt.add(pdk.mosfet("m", "d", "g", "s", "0", "n", 0.2e-6))
        est = estimate_circuit_area(ckt)
        assert est.width * est.height == pytest.approx(est.total_area)


class TestCellAreas:
    def test_sstvs_matches_paper_figure7(self, pdk):
        # Calibration target: 4.47 um^2 published layout area.
        est = estimate_cell_area(add_sstvs, pdk)
        assert est.total_area == pytest.approx(PAPER_SSTVS_AREA, rel=0.15)

    def test_inverter_much_smaller_than_sstvs(self, pdk):
        inv = estimate_cell_area(add_inverter, pdk)
        sstvs = estimate_cell_area(add_sstvs, pdk)
        assert sstvs.total_area > 5 * inv.total_area

    def test_combined_vs_competitive_area(self, pdk):
        # Both solutions are a dozen-or-so transistors; the combined VS
        # must land in the same order of magnitude.
        combined = estimate_cell_area(add_combined_vs, pdk)
        sstvs = estimate_cell_area(add_sstvs, pdk)
        assert 0.2 < combined.total_area / sstvs.total_area < 5.0

    def test_um2_property(self, pdk):
        est = estimate_cell_area(add_inverter, pdk)
        assert est.total_area_um2 == pytest.approx(est.total_area * 1e12)
