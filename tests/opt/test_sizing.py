"""Tests for the sizing optimizer (small budgets: SPICE in the loop)."""

import math

import pytest

from repro.cells.sstvs import SstvsSizing
from repro.core.characterize import StimulusPlan
from repro.errors import AnalysisError
from repro.opt import Objective, SizingOptimizer

FAST = StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9)


class TestObjective:
    def test_negative_weight_rejected(self):
        with pytest.raises(AnalysisError):
            Objective(w_delay=-1).validate()

    def test_zero_objective_rejected(self):
        with pytest.raises(AnalysisError):
            Objective(w_delay=0, w_leakage=0, w_area=0).validate()


class TestOptimizerSetup:
    def test_needs_corners(self):
        with pytest.raises(AnalysisError):
            SizingOptimizer(corners=[])

    def test_unknown_knob(self):
        with pytest.raises(AnalysisError):
            SizingOptimizer(knobs=("w_warp",))

    def test_bad_step(self):
        with pytest.raises(AnalysisError):
            SizingOptimizer(step=0.9)


class TestCost:
    def test_cost_finite_for_stock(self):
        optimizer = SizingOptimizer(corners=[(0.8, 1.2)], plan=FAST)
        assert math.isfinite(optimizer.cost(SstvsSizing()))

    def test_cost_cached(self):
        optimizer = SizingOptimizer(corners=[(0.8, 1.2)], plan=FAST)
        optimizer.cost(SstvsSizing())
        n = optimizer.evaluations
        optimizer.cost(SstvsSizing())
        assert optimizer.evaluations == n

    def test_nonfunctional_is_infinite(self):
        # A starved MC capacitor breaks the rising edge.
        optimizer = SizingOptimizer(corners=[(0.8, 1.2)], plan=FAST)
        broken = SstvsSizing(w_mc=0.1e-6, l_mc=0.1e-6, w_m1=3e-6)
        cost = optimizer.cost(broken)
        # Either outright non-functional (inf) or measurably worse.
        assert cost > optimizer.cost(SstvsSizing())

    def test_area_term_monotone(self):
        heavy = Objective(w_delay=0, w_leakage=0, w_area=1)
        optimizer = SizingOptimizer(corners=[(0.8, 1.2)], plan=FAST,
                                    objective=heavy)
        small = SstvsSizing()
        big = SstvsSizing(w_mc=6e-6)
        assert optimizer.cost(big) > optimizer.cost(small)


class TestSearch:
    def test_one_round_never_worse(self):
        optimizer = SizingOptimizer(corners=[(0.8, 1.2)], plan=FAST,
                                    knobs=("w_nor_n",))
        result = optimizer.run(rounds=1)
        assert result.best_cost <= result.initial_cost
        assert result.evaluations >= 2
        assert result.history[0].functional

    def test_result_sizing_functional(self):
        from repro.core import characterize
        from repro.pdk import Pdk
        optimizer = SizingOptimizer(corners=[(0.8, 1.2)], plan=FAST,
                                    knobs=("w_m2",))
        result = optimizer.run(rounds=1)
        metrics = characterize(Pdk(), "sstvs", 0.8, 1.2, plan=FAST,
                               sizing=result.best_sizing)
        assert metrics.functional

    def test_nonfunctional_start_rejected(self):
        optimizer = SizingOptimizer(corners=[(0.3, 1.2)], plan=FAST,
                                    knobs=("w_m1",))
        with pytest.raises(AnalysisError):
            optimizer.run(rounds=1)
