"""Chaos battery: kill -9, bit-flips, torn writes, SIGTERM, races.

Every scenario asserts the headline robustness guarantee end to end:
a crashed-and-resumed campaign is *bitwise identical* to one that never
crashed, and a corrupted cache entry is quarantined and recomputed —
never served. Run with ``pytest -m chaos`` or ``repro check --chaos``.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.analysis.montecarlo import MonteCarloConfig, monte_carlo_spec
from repro.core.characterize import StimulusPlan
from repro.runtime.cache import SolveCache, cache_key
from repro.runtime.experiment import (
    ArtifactStore, ExperimentPoint, ExperimentSpec, run_experiment,
)
from repro.runtime.service import CampaignService, ServiceConfig

pytestmark = pytest.mark.chaos


def _ctx():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def slow_square(x):
    time.sleep(0.03)
    return x * x


def _spec(n=12, **overrides):
    points = [ExperimentPoint(i, float(i)) for i in range(n)]
    options = {"name": "chaos-run", "measure": slow_square,
               "points": points, "codec": "json"}
    options.update(overrides)
    return ExperimentSpec(**options)


def _config(**overrides):
    options = {"chunk_size": 2, "workers": 2, "poll_interval_s": 0.005,
               "backoff_base_s": 0.01, "backoff_cap_s": 0.05}
    options.update(overrides)
    return ServiceConfig(**options)


def _mc_spec(runs=2):
    config = MonteCarloConfig(
        runs=runs, seed=20080310,
        plan=StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9))
    return monte_carlo_spec("sstvs", 0.8, 1.2, config)


def _bump(node):
    """Perturb every numeric leaf of a JSON value (+1.0)."""
    if isinstance(node, dict):
        return {key: _bump(value) for key, value in node.items()}
    if isinstance(node, list):
        return [_bump(value) for value in node]
    if isinstance(node, bool) or node is None:
        return node
    if isinstance(node, (int, float)):
        return node + 1.0
    return f"{node}-corrupt"


def _tamper_value(cache, key):
    """Perturb an entry's payload, keeping the stale checksum.

    Still perfectly parseable JSON — only checksum verification can
    tell this entry has been corrupted.
    """
    path = cache.entry_path(key)
    entry = json.loads(path.read_text())
    entry["value"] = _bump(entry["value"])
    path.write_text(json.dumps(entry, sort_keys=True))


def _supervisor_victim(store_root, run_id):
    """Child body: run a supervised campaign, SIGKILL *ourselves*
    (the supervisor) after the fourth merged point — an uncatchable
    kill -9 mid-campaign, exactly at a row boundary a real crash could
    hit."""
    merged = []

    def progress(index, value):
        merged.append(index)
        if len(merged) == 4:
            os.kill(os.getpid(), signal.SIGKILL)

    service = CampaignService(store_root, config=_config())
    service.run(_spec(), run_id=run_id, progress=progress)


def _sigterm_victim(store_root, run_id, ready_path):
    def progress(index, value):
        # First merged row: the supervisor loop (and its SIGTERM
        # handler) is live — tell the parent it may now shoot us.
        if not os.path.exists(ready_path):
            with open(ready_path, "w") as handle:
                handle.write("ready")

    service = CampaignService(store_root, config=_config())
    service.run(_spec(), run_id=run_id, progress=progress)


def _hammer_puts(root, worker_id, n):
    cache = SolveCache(root, lock_timeout_s=30.0, lock_poll_s=0.001)
    for i in range(n):
        cache.put(cache_key(x=i), [float(worker_id), float(i)])


class TestKillNineResume:
    def test_killed_supervisor_resumes_bitwise_identical(self, tmp_path):
        serial = run_experiment(_spec())
        run_id = "chaos-kill-run"
        victim = _ctx().Process(target=_supervisor_victim,
                                args=(str(tmp_path), run_id))
        victim.start()
        victim.join(timeout=60)
        assert victim.exitcode == -signal.SIGKILL
        # Orphaned chunk workers each finish their one chunk and exit;
        # give them a beat so their final fsynced lines are on disk.
        time.sleep(0.5)

        service = CampaignService(tmp_path, config=_config())
        resumed = service.run(_spec(), run_id=run_id)
        assert service.stats.salvaged_rows >= 4
        assert not resumed.interrupted
        assert resumed.values() == serial.values()
        assert resumed.counts == serial.counts
        # The healed artifact reloads identically.
        healed = ArtifactStore(tmp_path).load(run_id)
        assert healed.values() == serial.values()


class TestSigtermParity:
    def test_sigterm_finishes_partial_then_resume_matches(self,
                                                          tmp_path):
        serial = run_experiment(_spec())
        run_id = "chaos-term-run"
        ready = tmp_path / "ready"
        victim = _ctx().Process(target=_sigterm_victim,
                                args=(str(tmp_path), run_id,
                                      str(ready)))
        victim.start()
        deadline = time.monotonic() + 30
        while not ready.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert ready.exists()
        os.kill(victim.pid, signal.SIGTERM)
        victim.join(timeout=60)
        # SIGTERM is Ctrl-C: partial results written, clean exit 0.
        assert victim.exitcode == 0

        store = ArtifactStore(tmp_path)
        partial = store.load(run_id)
        assert partial.interrupted
        assert 0 < len(partial.rows) <= 12

        service = CampaignService(tmp_path, config=_config())
        resumed = service.run(_spec(), run_id=run_id, resume=partial)
        assert not resumed.interrupted
        assert resumed.values() == serial.values()


class TestCacheBitFlip:
    def test_corrupt_entry_recomputed_bitwise_equal_to_cold(self,
                                                            tmp_path):
        spec = _mc_spec()
        cold_cache = SolveCache(tmp_path / "cache")
        cold = run_experiment(_mc_spec(), cache=cold_cache)
        assert cold_cache.stats.stores == 2

        keys = [path.stem for path in cold_cache.iter_entry_paths()]
        _tamper_value(cold_cache, keys[0])

        warm_cache = SolveCache(tmp_path / "cache")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            warm = run_experiment(_mc_spec(), cache=warm_cache)
        assert warm_cache.stats.corruptions == 1
        assert warm_cache.stats.hits == 1    # the intact entry
        assert warm_cache.stats.stores == 1  # the recomputed one
        assert warm.values() == cold.values()
        # The corrupt body is preserved for forensics, never served.
        quarantine = tmp_path / "cache" / "quarantine"
        assert len(list(quarantine.iterdir())) == 1
        assert warm_cache.verify()["corrupt"] == 0

    def test_negative_control_detection_disabled_serves_corruption(
            self, tmp_path):
        """Prove the checksum is load-bearing.

        With verification switched off, the very same tampered entry IS
        served and the warm campaign silently diverges from cold — the
        exact failure mode the checksum exists to prevent. If the
        production default ever stopped verifying, this test's sibling
        above would fail and this one would "pass", flagging the
        regression.
        """
        cold_cache = SolveCache(tmp_path / "cache")
        cold = run_experiment(_mc_spec(), cache=cold_cache)
        keys = [path.stem for path in cold_cache.iter_entry_paths()]
        _tamper_value(cold_cache, keys[0])

        unsafe = SolveCache(tmp_path / "cache", verify_checksums=False)
        warm = run_experiment(_mc_spec(), cache=unsafe)
        assert unsafe.stats.hits == 2
        assert unsafe.stats.corruptions == 0  # nothing detected...
        assert warm.values() != cold.values()  # ...and results diverge


class TestConcurrentWriters:
    def test_two_writers_same_keys_never_torn(self, tmp_path):
        root = tmp_path / "cache"
        n = 40
        writers = [_ctx().Process(target=_hammer_puts,
                                  args=(str(root), wid, n))
                   for wid in (1, 2)]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        survivor = SolveCache(root)
        report = survivor.verify()
        assert report["corrupt"] == 0
        assert report["entries"] == n
        assert not survivor.lock_path.exists()
        for i in range(n):
            hit, payload = survivor.get(cache_key(x=i))
            assert hit
            # Last committed writer wins wholesale — values are one
            # writer's record or the other's, never an interleaving.
            assert payload in ([1.0, float(i)], [2.0, float(i)])

    def test_crashed_writer_lock_is_reclaimed(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        # A lock from a writer that no longer exists (dead pid).
        pid = 2 ** 22 - 7
        while os.path.exists(f"/proc/{pid}"):  # pragma: no cover
            pid -= 1
        (root / ".lock").write_text(json.dumps({"pid": pid}))
        cache = SolveCache(root, lock_timeout_s=5.0)
        assert cache.put(cache_key(x=0), 1.0)
        assert cache.get(cache_key(x=0)) == (True, 1.0)
