"""Tests for the gate netlist and static-timing engine."""

import numpy as np
import pytest

from repro.core.libchar import (
    CellCharacterization, NldmTable, TimingArc,
)
from repro.errors import AnalysisError
from repro.sta import FALL, GateNetlist, RISE, StaEngine, TimingLibrary


def synthetic_cell(name: str, base_delay: float, inverting=True,
                   cap=1e-15) -> CellCharacterization:
    """Cell with delay = base + slew/10 + load * 1e5 (analytic)."""
    slews = np.asarray([10e-12, 200e-12])
    loads = np.asarray([0.5e-15, 8e-15])
    values = np.asarray([[base_delay + s / 10 + l * 1e5
                          for l in loads] for s in slews])
    transitions = np.asarray([[20e-12 + l * 1e5 for l in loads]
                              for s in slews])
    tables = dict(
        cell_rise=NldmTable(slews, loads, values),
        cell_fall=NldmTable(slews, loads, values * 1.2),
        rise_transition=NldmTable(slews, loads, transitions),
        fall_transition=NldmTable(slews, loads, transitions))
    return CellCharacterization(
        name=name, kind="synthetic", vddi=1.0, vddo=1.0,
        arc=TimingArc(**tables, inverting=inverting),
        input_capacitance=cap, slews=tuple(slews), loads=tuple(loads))


@pytest.fixture
def library():
    lib = TimingLibrary()
    lib.add("fast", synthetic_cell("fast", 10e-12))
    lib.add("slow", synthetic_cell("slow", 100e-12))
    lib.add("buf", synthetic_cell("buf", 20e-12, inverting=False))
    return lib


def chain(*cells) -> GateNetlist:
    nl = GateNetlist("chain")
    nl.add_primary_input("n0")
    for i, cell in enumerate(cells):
        nl.add_instance(f"u{i}", cell, f"n{i}", f"n{i + 1}")
    nl.add_primary_output(f"n{len(cells)}")
    return nl


class TestNetlistStructure:
    def test_duplicate_instance(self):
        nl = chain("fast")
        with pytest.raises(AnalysisError, match="duplicate"):
            nl.add_instance("u0", "fast", "x", "y")

    def test_multiple_drivers_rejected(self):
        nl = chain("fast")
        with pytest.raises(AnalysisError, match="already driven"):
            nl.add_instance("u9", "fast", "n0", "n1")

    def test_self_loop_rejected(self):
        nl = GateNetlist()
        with pytest.raises(AnalysisError):
            nl.add_instance("u0", "fast", "a", "a")

    def test_combinational_loop_detected(self):
        nl = GateNetlist()
        nl.add_primary_input("a")
        nl.add_instance("u0", "fast", "x", "y")
        nl.add_instance("u1", "fast", "y", "x")
        with pytest.raises(AnalysisError, match="loop"):
            nl.validate()

    def test_undriven_net_detected(self):
        nl = GateNetlist()
        nl.add_primary_input("a")
        nl.add_instance("u0", "fast", "ghost", "y")
        with pytest.raises(AnalysisError, match="no"):
            nl.validate()

    def test_topological_order(self):
        nl = chain("fast", "fast", "fast")
        order = [inst.name for inst in nl.topological_instances()]
        assert order == ["u0", "u1", "u2"]

    def test_loads_and_driver(self):
        nl = chain("fast", "fast")
        assert nl.driver_of("n1").name == "u0"
        assert [x.name for x in nl.loads_of("n1")] == ["u1"]


class TestEngine:
    def test_chain_delay_additive(self, library):
        nl = chain("fast", "fast")
        report = StaEngine(nl, library).run(input_slew=10e-12)
        single = StaEngine(chain("fast"), library).run(
            input_slew=10e-12)
        assert report.worst_arrival > single.worst_arrival

    def test_critical_path_structure(self, library):
        nl = chain("fast", "slow", "fast")
        report = StaEngine(nl, library).run()
        assert [s.instance for s in report.critical_path] == \
            ["u0", "u1", "u2"]
        assert report.critical_path[-1].arrival == pytest.approx(
            report.worst_arrival)

    def test_slower_cell_dominates(self, library):
        fast = StaEngine(chain("fast"), library).run().worst_arrival
        slow = StaEngine(chain("slow"), library).run().worst_arrival
        assert slow > fast + 80e-12

    def test_fanout_increases_delay(self, library):
        light = GateNetlist()
        light.add_primary_input("a")
        light.add_instance("u0", "fast", "a", "y")
        light.add_primary_output("y")

        heavy = GateNetlist()
        heavy.add_primary_input("a")
        heavy.add_instance("u0", "fast", "a", "y")
        for i in range(6):
            heavy.add_instance(f"load{i}", "fast", "y", f"z{i}")
        heavy.add_primary_output("y")

        t_light = StaEngine(light, library).run().worst_arrival
        t_heavy = StaEngine(heavy, library).run().worst_arrival
        assert t_heavy > t_light

    def test_wire_cap_increases_delay(self, library):
        bare = chain("fast", "fast")
        loaded = chain("fast", "fast")
        loaded.set_wire_cap("n1", 5e-15)
        t0 = StaEngine(bare, library).run().worst_arrival
        t1 = StaEngine(loaded, library).run().worst_arrival
        assert t1 > t0

    def test_inverting_phase_tracking(self, library):
        report = StaEngine(chain("fast"), library).run()
        step = report.critical_path[0]
        assert step.input_phase != step.output_phase

    def test_buffer_keeps_phase(self, library):
        report = StaEngine(chain("buf"), library).run()
        step = report.critical_path[0]
        assert step.input_phase == step.output_phase

    def test_missing_cell_raises(self, library):
        nl = chain("ghost")
        with pytest.raises(AnalysisError, match="not in library"):
            StaEngine(nl, library).run()

    def test_pretty_report(self, library):
        text = StaEngine(chain("fast", "slow"), library).run().pretty()
        assert "Critical path" in text
        assert "u1" in text


class TestRealCells:
    def test_crossing_path_with_characterized_cells(self, pdk):
        # Slow (SPICE in the loop): a 0.8 V chain through the SS-TVS
        # into a 1.2 V chain.
        from repro.core.libchar import characterize_cell
        slews, loads = (20e-12, 150e-12), (0.5e-15, 4e-15)
        lib = TimingLibrary()
        lib.add("inv08", characterize_cell("inverter", pdk, 0.8, 0.8,
                                           slews=slews, loads=loads))
        lib.add("inv12", characterize_cell("inverter", pdk, 1.2, 1.2,
                                           slews=slews, loads=loads))
        lib.add("ls", characterize_cell("sstvs", pdk, 0.8, 1.2,
                                        slews=slews, loads=loads))
        nl = GateNetlist("crossing")
        nl.add_primary_input("a")
        nl.add_instance("u1", "inv08", "a", "n1")
        nl.add_instance("ls", "ls", "n1", "n2")
        nl.add_instance("u2", "inv12", "n2", "y")
        nl.add_primary_output("y")
        report = StaEngine(nl, lib).run(input_slew=50e-12)
        # The shifter dominates the path.
        shifter_step = [s for s in report.critical_path
                        if s.instance == "ls"][0]
        assert shifter_step.delay > max(
            s.delay for s in report.critical_path
            if s.instance != "ls")
        assert 50e-12 < report.worst_arrival < 2e-9
