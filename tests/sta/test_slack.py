"""Tests for STA slack/constraint reporting."""

import pytest

from repro.errors import AnalysisError
from repro.sta import StaEngine, TimingLibrary
from tests.sta.test_sta import chain, synthetic_cell


@pytest.fixture
def report():
    lib = TimingLibrary()
    lib.add("fast", synthetic_cell("fast", 10e-12))
    return StaEngine(chain("fast", "fast"), lib).run()


class TestSlack:
    def test_met_constraint(self, report):
        assert report.meets(1e-9)
        assert report.slack(1e-9) > 0

    def test_violated_constraint(self, report):
        assert not report.meets(1e-12)
        assert report.slack(1e-12) < 0

    def test_slack_arithmetic(self, report):
        required = 500e-12
        assert report.slack(required) == pytest.approx(
            required - report.worst_arrival)

    def test_pretty_with_constraint(self, report):
        text = report.pretty(required=1e-9)
        assert "MET" in text
        text = report.pretty(required=1e-12)
        assert "VIOLATED" in text

    def test_output_arrival(self, report):
        assert report.output_arrival("n2") == pytest.approx(
            report.worst_arrival)

    def test_output_arrival_unknown_net(self, report):
        with pytest.raises(AnalysisError):
            report.output_arrival("nowhere")
