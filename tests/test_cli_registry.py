"""CLI surface of the cell & PDK registries.

Unknown kinds and nodes must fail with the *live* registered names
(exit code 2 from argparse), every driver must accept ``--pdk``, and
the bench/check extensions must reach the registries end to end.
"""

import json

import pytest

from repro.cells.registry import cell_names
from repro.cli import build_parser, main
from repro.pdk.registry import node_names


class TestErrorPaths:
    @pytest.mark.parametrize("argv", [
        ["characterize", "warp"],
        ["sweep", "warp"],
        ["mc", "warp"],
        ["vtc", "warp"],
        ["liberty", "warp"],
    ])
    def test_unknown_kind_lists_registered_cells(self, argv, capsys):
        with pytest.raises(SystemExit) as err:
            main(argv)
        assert err.value.code == 2
        message = capsys.readouterr().err
        for kind in cell_names():
            assert kind in message

    @pytest.mark.parametrize("command", [
        "characterize", "sweep", "mc", "functional", "temp", "sens",
        "liberty", "vtc", "pvt",
    ])
    def test_unknown_pdk_lists_registered_nodes(self, command, capsys):
        argv = [command, "--pdk", "sky130"]
        if command in ("characterize", "liberty", "vtc"):
            argv.insert(1, "sstvs")
        with pytest.raises(SystemExit) as err:
            main(argv)
        assert err.value.code == 2
        message = capsys.readouterr().err
        for node in node_names():
            assert node in message

    def test_new_zoo_kinds_are_accepted(self):
        parser = build_parser()
        for kind in ("lpls_split", "lpls_pass", "ulpls"):
            args = parser.parse_args(["characterize", kind])
            assert args.kinds == [kind]

    def test_every_campaign_driver_has_pdk_knob(self):
        parser = build_parser()
        for argv in (["characterize", "sstvs"], ["sweep"], ["mc"],
                     ["functional"], ["temp"], ["sens"],
                     ["liberty", "sstvs"], ["vtc", "sstvs"], ["pvt"]):
            args = parser.parse_args(argv + ["--pdk", "lv22"])
            assert args.pdk == "lv22"


class TestCommands:
    def test_characterize_on_lv22(self, capsys):
        code = main(["characterize", "inverter", "--pdk", "lv22",
                     "--vddi", "0.35", "--vddo", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[lv22]" in out and "Functional" in out

    def test_area_lists_the_whole_zoo(self, capsys):
        code = main(["area"])
        out = capsys.readouterr().out
        assert code == 0
        for kind in cell_names():
            assert kind in out

    def test_bench_leaderboard_writes_artifact(self, tmp_path, capsys):
        path = str(tmp_path / "LB.json")
        code = main(["bench", "--leaderboard", "--cells", "inverter",
                     "--nodes", "lv22", "--corners", "tt",
                     "--out", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "inverter" in out
        with open(path) as handle:
            board = json.load(handle)
        assert board["schema"] == "repro-leaderboard-v1"
        assert board["version"] == 1
        assert len(board["entries"]) == 1

    def test_check_accepts_cells_flag(self):
        args = build_parser().parse_args(["check", "--cells"])
        assert args.cells is True

    def test_check_cells_smokes_the_registries(self, monkeypatch):
        # Narrow both registries so the smoke is one characterization.
        from repro.cells import registry as cells_reg
        from repro.cli import _check_cells
        from repro.pdk import registry as pdk_reg
        monkeypatch.setattr(
            cells_reg, "_CELLS",
            {"inverter": cells_reg._CELLS["inverter"]})
        monkeypatch.setattr(
            pdk_reg, "_NODES", {"lv22": pdk_reg._NODES["lv22"]})
        results = []
        _check_cells(lambda label, ok: results.append((label, ok)))
        assert len(results) == 1
        label, ok = results[0]
        assert "inverter@lv22" in label
        assert ok
