"""Tests for the event-driven simulator and shifter models."""

import pytest

from repro.errors import AnalysisError
from repro.logicsim import (
    LogicSimulator, SupplyState, buffer, inverter, level_shifter, nand2,
    nor2,
)


class TestKernelBasics:
    def test_inverter_propagates(self):
        sim = LogicSimulator()
        sim.add(inverter("u1", "a", "y", delay=10e-12))
        sim.set_input("a", "0")
        sim.run(1e-9)
        assert sim.value("y") == "1"

    def test_delay_respected(self):
        sim = LogicSimulator()
        sim.add(inverter("u1", "a", "y", delay=100e-12))
        sim.set_input("a", "0")
        sim.run(1e-9)
        sim.schedule_input(2e-9, "a", "1")
        sim.run(2.05e-9)
        assert sim.value("y") == "1"  # change still in flight
        sim.run(3e-9)
        assert sim.value("y") == "0"

    def test_chain_accumulates_delay(self):
        sim = LogicSimulator()
        sim.add(inverter("u1", "a", "n1", delay=10e-12))
        sim.add(inverter("u2", "n1", "y", delay=10e-12))
        sim.set_input("a", "1")
        sim.run(1e-9)
        changes = sim.changes("y")
        assert changes[-1].value == "1"
        assert changes[-1].time == pytest.approx(20e-12, abs=1e-15)

    def test_nand_nor_gates(self):
        sim = LogicSimulator()
        sim.add(nand2("g1", "a", "b", "x"))
        sim.add(nor2("g2", "a", "b", "y"))
        sim.set_input("a", "1")
        sim.set_input("b", "0")
        sim.run(1e-9)
        assert sim.value("x") == "1"
        assert sim.value("y") == "0"

    def test_glitch_visible_in_history(self):
        # a -> inv -> n1; a and n1 into nand: a 0->1 step produces a
        # hazard at the nand output before it settles.
        sim = LogicSimulator()
        sim.add(inverter("u1", "a", "n1", delay=20e-12))
        sim.add(nand2("g1", "a", "n1", "y", delay=5e-12))
        sim.set_input("a", "0")
        sim.run(1e-9)
        sim.schedule_input(2e-9, "a", "1")
        sim.run(3e-9)
        values = [c.value for c in sim.changes("y")]
        assert "0" in values       # the hazard pulse
        assert values[-1] == "1"   # final settled value

    def test_duplicate_component_rejected(self):
        sim = LogicSimulator()
        sim.add(inverter("u1", "a", "y"))
        with pytest.raises(AnalysisError):
            sim.add(inverter("u1", "b", "z"))

    def test_multiple_drivers_rejected(self):
        sim = LogicSimulator()
        sim.add(inverter("u1", "a", "y"))
        with pytest.raises(AnalysisError):
            sim.add(inverter("u2", "b", "y"))

    def test_schedule_in_past_rejected(self):
        sim = LogicSimulator()
        sim.add(inverter("u1", "a", "y"))
        sim.run(1e-9)
        with pytest.raises(AnalysisError):
            sim.schedule_input(0.5e-9, "a", "1")

    def test_undriven_net_reads_z(self):
        sim = LogicSimulator()
        assert sim.value("nowhere") == "z"


class TestShifterModels:
    def _system(self, kind):
        supplies = SupplyState()
        supplies.set("vin", 1.2)
        supplies.set("vout", 0.8)
        sim = LogicSimulator(supplies)
        sim.add(level_shifter("ls", kind, "a", "y", supplies,
                              "vin", "vout"))
        return sim, supplies

    def test_sstvs_valid_any_relationship(self):
        sim, supplies = self._system("sstvs")
        sim.set_input("a", "1")
        sim.run(1e-9)
        assert sim.value("y") == "0"  # inverting
        sim.schedule_supply(2e-9, "vout", 1.4)  # flip the relationship
        sim.schedule_input(3e-9, "a", "0")
        sim.run(4e-9)
        assert sim.value("y") == "1"
        assert not sim.saw_unknown("y")

    def test_inverter_corrupts_when_underdriven(self):
        sim, supplies = self._system("inverter")
        sim.set_input("a", "1")
        sim.run(1e-9)
        assert sim.value("y") == "0"  # 1.2 -> 0.8: inverter fine
        # DVS: output domain jumps far above the input swing; the
        # inverter's PMOS never turns off -> X.
        sim.schedule_supply(2e-9, "vout", 1.6)
        sim.run(3e-9)
        assert sim.value("y") == "x"

    def test_ssvs_corrupts_at_low_supply_downshift(self):
        sim, supplies = self._system("ssvs")
        # 1.2 -> 0.8 with a low output rail: outside the one-way SS-VS
        # design envelope.
        sim.set_input("a", "1")
        sim.run(1e-9)
        assert sim.value("y") == "x"

    def test_cvs_always_valid(self):
        sim, supplies = self._system("cvs")
        sim.set_input("a", "1")
        sim.run(1e-9)
        assert sim.value("y") == "0"

    def test_unknown_kind_rejected(self):
        supplies = SupplyState()
        supplies.set("a", 1.0)
        with pytest.raises(AnalysisError):
            level_shifter("ls", "teleporter", "a", "y", supplies,
                          "a", "a")

    def test_recovery_after_dvs_returns(self):
        sim, supplies = self._system("inverter")
        sim.set_input("a", "1")
        sim.run(1e-9)
        sim.schedule_supply(2e-9, "vout", 1.6)   # corrupt
        sim.schedule_supply(4e-9, "vout", 0.8)   # restore
        sim.run(5e-9)
        assert sim.value("y") == "0"
        assert sim.saw_unknown("y")


class TestDvsScenario:
    def test_end_to_end_crossing(self):
        """A data path crossing a DVS boundary: the SS-TVS keeps the
        receiver clean through a supply flip; an inverter does not."""
        supplies = SupplyState()
        supplies.set("cpu", 1.2)
        supplies.set("dsp", 1.0)

        for kind, expect_corruption in (("sstvs", False),
                                        ("inverter", True)):
            sim = LogicSimulator(supplies=SupplyState(
                {"cpu": 1.2, "dsp": 1.0}))
            sim.supplies.voltages.update(cpu=1.2, dsp=1.0)
            sim.add(inverter("drv", "data", "q1", delay=10e-12))
            sim.add(level_shifter("ls", kind, "q1", "q2",
                                  sim.supplies, "cpu", "dsp"))
            sim.add(buffer("rx", "q2", "out", delay=10e-12))
            sim.set_input("data", "0")
            sim.run(1e-9)
            # DVS drops the CPU to 0.6 V below the DSP's 1.0 V + slack.
            sim.schedule_supply(2e-9, "cpu", 0.6)
            sim.schedule_input(3e-9, "data", "1")
            sim.run(5e-9)
            assert sim.saw_unknown("out") == expect_corruption, kind
