"""Tests for digital VCD export and activity statistics."""

import pytest

from repro.errors import AnalysisError
from repro.logicsim import LogicSimulator, inverter
from repro.logicsim.trace import (
    toggle_count, unknown_time_fraction, write_digital_vcd,
)


@pytest.fixture
def toggled_sim():
    sim = LogicSimulator()
    sim.add(inverter("u1", "a", "y", delay=10e-12))
    sim.set_input("a", "0")
    for i, t in enumerate((1e-9, 2e-9, 3e-9)):
        sim.schedule_input(t, "a", "1" if i % 2 == 0 else "0")
    sim.run(5e-9)
    return sim


class TestDigitalVcd:
    def test_structure(self, toggled_sim):
        text = write_digital_vcd(toggled_sim, ["a", "y"])
        assert "$var wire 1" in text
        assert "$enddefinitions $end" in text
        assert "#0" in text or "#1000" in text

    def test_value_codes(self, toggled_sim):
        text = write_digital_vcd(toggled_sim, ["a"])
        body = text.split("$enddefinitions $end")[1]
        assert "1" in body and "0" in body

    def test_empty_rejected(self, toggled_sim):
        with pytest.raises(AnalysisError):
            write_digital_vcd(toggled_sim, [])

    def test_bad_timescale(self, toggled_sim):
        with pytest.raises(AnalysisError):
            write_digital_vcd(toggled_sim, ["a"], timescale="eons")


class TestActivityStats:
    def test_toggle_count(self, toggled_sim):
        # a: 0 -> 1 -> 0 -> 1: three toggles.
        assert toggle_count(toggled_sim, "a") == 3
        assert toggle_count(toggled_sim, "y") == 3

    def test_toggle_count_empty_net(self, toggled_sim):
        assert toggle_count(toggled_sim, "nowhere") == 0

    def test_unknown_fraction_zero_for_clean(self, toggled_sim):
        assert unknown_time_fraction(toggled_sim, "y", 5e-9) == 0.0

    def test_unknown_fraction_counts_x_time(self):
        from repro.logicsim import SupplyState, level_shifter
        supplies = SupplyState()
        supplies.set("a", 1.2)
        supplies.set("b", 0.8)
        sim = LogicSimulator(supplies)
        sim.add(level_shifter("ls", "inverter", "d", "q", supplies,
                              "a", "b"))
        sim.set_input("d", "1")
        sim.run(1e-9)
        sim.schedule_supply(2e-9, "b", 1.7)   # corrupts from ~2 ns on
        sim.run(10e-9)
        fraction = unknown_time_fraction(sim, "q", 10e-9)
        assert 0.6 < fraction < 0.9

    def test_unknown_fraction_bad_horizon(self, toggled_sim):
        with pytest.raises(AnalysisError):
            unknown_time_fraction(toggled_sim, "y", 0.0)
