"""Tests for the 4-value logic algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.logicsim.values import (
    HIGHZ, ONE, UNKNOWN, VALUES, ZERO, logic_and, logic_nand, logic_nor,
    logic_not, logic_or, logic_xor, resolve, validate,
)

value_st = st.sampled_from(VALUES)


class TestBasicOps:
    def test_not_table(self):
        assert logic_not(ZERO) == ONE
        assert logic_not(ONE) == ZERO
        assert logic_not(UNKNOWN) == UNKNOWN
        assert logic_not(HIGHZ) == UNKNOWN

    def test_and_controlling_zero(self):
        assert logic_and(ZERO, UNKNOWN) == ZERO
        assert logic_and(UNKNOWN, ZERO, ONE) == ZERO

    def test_and_all_ones(self):
        assert logic_and(ONE, ONE, ONE) == ONE

    def test_and_pessimism(self):
        assert logic_and(ONE, UNKNOWN) == UNKNOWN
        assert logic_and(ONE, HIGHZ) == UNKNOWN

    def test_or_controlling_one(self):
        assert logic_or(ONE, UNKNOWN) == ONE

    def test_or_all_zeros(self):
        assert logic_or(ZERO, ZERO) == ZERO

    def test_nand_nor(self):
        assert logic_nand(ONE, ONE) == ZERO
        assert logic_nand(ZERO, UNKNOWN) == ONE
        assert logic_nor(ZERO, ZERO) == ONE
        assert logic_nor(ONE, UNKNOWN) == ZERO

    def test_xor(self):
        assert logic_xor(ONE, ZERO) == ONE
        assert logic_xor(ONE, ONE) == ZERO
        assert logic_xor(ONE, UNKNOWN) == UNKNOWN

    def test_validate_case_folding(self):
        assert validate("X") == UNKNOWN

    def test_validate_rejects_garbage(self):
        with pytest.raises(AnalysisError):
            validate("7")


class TestResolve:
    def test_z_yields(self):
        assert resolve(HIGHZ, ONE) == ONE
        assert resolve(ZERO, HIGHZ) == ZERO

    def test_agreement(self):
        assert resolve(ONE, ONE) == ONE

    def test_conflict_is_x(self):
        assert resolve(ONE, ZERO) == UNKNOWN


class TestAlgebraProperties:
    @given(value_st, value_st)
    def test_and_commutative(self, a, b):
        assert logic_and(a, b) == logic_and(b, a)

    @given(value_st, value_st)
    def test_or_commutative(self, a, b):
        assert logic_or(a, b) == logic_or(b, a)

    @given(value_st)
    def test_double_negation_weak(self, a):
        # not(not(a)) maps 0/1 to themselves and x/z to x.
        result = logic_not(logic_not(a))
        if a in (ZERO, ONE):
            assert result == a
        else:
            assert result == UNKNOWN

    @given(value_st, value_st)
    def test_demorgan(self, a, b):
        assert logic_nand(a, b) == logic_or(logic_not(a), logic_not(b))

    @given(value_st, value_st)
    def test_resolve_commutative(self, a, b):
        assert resolve(a, b) == resolve(b, a)
