"""Pre-refactor golden pin for the registry dispatch path.

``golden_ptm90_metrics.json`` was captured on the string-dispatch code
(commit a2773b6) with every float stored as ``float.hex()``. The cell
and PDK registries must reproduce those numbers *bitwise*: any device
insertion-order change, select-source reshuffle, or card drift shows up
here as a hex mismatch, not a tolerance wobble.
"""

import json
from pathlib import Path

import pytest

from repro.core.characterize import characterize
from repro.core.metrics import METRIC_FIELDS
from repro.pdk import Pdk

GOLDEN_PATH = Path(__file__).parent / "golden_ptm90_metrics.json"


@pytest.fixture(scope="module")
def golden():
    document = json.loads(GOLDEN_PATH.read_text())
    assert document["schema"] == "repro-golden-metrics-v1"
    assert document["pdk"] == "ptm90"
    return document


@pytest.mark.parametrize("kind", ["sstvs", "combined"])
def test_registry_dispatch_matches_pre_refactor_bitwise(golden, kind):
    metrics = characterize(Pdk(), kind, golden["vddi"], golden["vddo"])
    pinned = golden["metrics"][kind]
    assert metrics.functional == pinned["functional"]
    for name in METRIC_FIELDS:
        assert getattr(metrics, name).hex() == pinned[name], (
            f"{kind}.{name} drifted from the pre-registry capture")
