"""Tests for testbench construction."""

import pytest

from repro.core.testbench import (
    COMBINED, InputStep, KINDS, LOAD_CAP, build_testbench,
    dut_is_inverting, input_source_pwl,
)
from repro.errors import AnalysisError
from repro.spice.devices import Capacitor, VoltageSource


class TestInputSourcePwl:
    def test_inversion_of_levels(self):
        pwl = input_source_pwl([InputStep(1e-9, True)], vddi=0.8)
        # Input low before the step -> source HIGH (driver inverts).
        assert pwl.value(0.5e-9) == pytest.approx(0.8)
        assert pwl.value(2e-9) == pytest.approx(0.0)

    def test_multiple_steps(self):
        pwl = input_source_pwl([InputStep(1e-9, True),
                                InputStep(2e-9, False)], vddi=1.2)
        assert pwl.value(1.5e-9) == pytest.approx(0.0)
        assert pwl.value(3e-9) == pytest.approx(1.2)

    def test_unordered_steps_sorted(self):
        pwl = input_source_pwl([InputStep(2e-9, False),
                                InputStep(1e-9, True)], vddi=1.0)
        assert pwl.value(1.5e-9) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            input_source_pwl([], vddi=1.0)

    def test_coincident_steps_rejected(self):
        with pytest.raises(AnalysisError):
            input_source_pwl([InputStep(1e-9, True),
                              InputStep(1e-9, False)], vddi=1.0)


class TestBuildTestbench:
    STEPS = [InputStep(1e-9, True), InputStep(2e-9, False)]

    @pytest.mark.parametrize("kind", KINDS)
    def test_all_kinds_build(self, pdk, kind):
        circuit, probes = build_testbench(pdk, kind, 0.8, 1.2, self.STEPS)
        circuit.finalize()
        assert probes.in_node in circuit.node_names()
        assert probes.out_node in circuit.node_names()

    def test_unknown_kind(self, pdk):
        with pytest.raises(AnalysisError, match="unknown DUT kind"):
            build_testbench(pdk, "flux_capacitor", 0.8, 1.2, self.STEPS)

    def test_negative_supply_rejected(self, pdk):
        with pytest.raises(AnalysisError):
            build_testbench(pdk, "sstvs", -0.8, 1.2, self.STEPS)

    def test_load_capacitor_value(self, pdk):
        circuit, _ = build_testbench(pdk, "sstvs", 0.8, 1.2, self.STEPS)
        cload = circuit.device("cload")
        assert isinstance(cload, Capacitor)
        assert cload.capacitance == pytest.approx(LOAD_CAP)

    def test_separate_supplies(self, pdk):
        circuit, probes = build_testbench(pdk, "sstvs", 0.8, 1.2,
                                          self.STEPS)
        vdut = circuit.device(probes.dut_supply)
        vdrv = circuit.device(probes.driver_supply)
        assert vdut.value(0) == pytest.approx(1.2)
        assert vdrv.value(0) == pytest.approx(0.8)

    def test_combined_select_direction_low_to_high(self, pdk):
        circuit, _ = build_testbench(pdk, COMBINED, 0.8, 1.2, self.STEPS)
        # sel high selects the SS-VS path for a low-to-high shift.
        assert circuit.device("vsel").value(0) == pytest.approx(1.2)
        assert circuit.device("vselb").value(0) == pytest.approx(0.0)

    def test_combined_select_direction_high_to_low(self, pdk):
        circuit, _ = build_testbench(pdk, COMBINED, 1.2, 0.8, self.STEPS)
        assert circuit.device("vsel").value(0) == pytest.approx(0.0)
        assert circuit.device("vselb").value(0) == pytest.approx(0.8)

    def test_driver_is_same_sized_inverter(self, pdk):
        from repro.cells.inverter import WN_DEFAULT, WP_DEFAULT
        circuit, _ = build_testbench(pdk, "sstvs", 0.8, 1.2, self.STEPS)
        assert circuit.device("driver.mn").w == pytest.approx(WN_DEFAULT)
        assert circuit.device("driver.mp").w == pytest.approx(WP_DEFAULT)


class TestPolarity:
    def test_cvs_non_inverting(self):
        assert not dut_is_inverting("cvs")

    @pytest.mark.parametrize("kind", ["sstvs", "combined", "inverter",
                                      "ssvs_khan", "ssvs_puri"])
    def test_others_inverting(self, kind):
        assert dut_is_inverting(kind)
