"""Tests for the characterization flows (slower: real transients)."""

import math

import pytest

from repro.core import LevelShifter, StimulusPlan, characterize, quick_delays
from repro.errors import AnalysisError
from repro.pdk import Pdk

FAST_PLAN = StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9)


class TestStimulusPlan:
    def test_edge_times_ordered(self):
        plan = StimulusPlan()
        assert (plan.reset_rise < plan.reset_fall < plan.t_rise_a
                < plan.t_fall_b < plan.t_rise_c < plan.t_fall_d
                < plan.t_stop)

    def test_steps_count(self):
        assert len(StimulusPlan().steps()) == 6

    def test_invalid_phases(self):
        with pytest.raises(AnalysisError):
            StimulusPlan(settle=-1e-9).validate()

    def test_reset_must_fit_in_settle(self):
        with pytest.raises(AnalysisError):
            StimulusPlan(settle=1e-9, reset_fall=2e-9).validate()

    def test_power_window_must_fit(self):
        with pytest.raises(AnalysisError):
            StimulusPlan(hold=0.4e-9, power_window=0.5e-9).validate()


class TestCharacterizeSstvs:
    @pytest.fixture(scope="class")
    def metrics(self):
        return characterize(Pdk(), "sstvs", 0.8, 1.2, plan=FAST_PLAN)

    def test_functional(self, metrics):
        assert metrics.functional

    def test_delays_positive_and_sane(self, metrics):
        assert 1e-12 < metrics.delay_rise < 2e-9
        assert 1e-12 < metrics.delay_fall < 2e-9

    def test_powers_positive(self, metrics):
        assert metrics.power_rise > 0
        assert metrics.power_fall > 0

    def test_leakage_nanoamp_scale(self, metrics):
        assert 1e-11 < metrics.leakage_high < 1e-6
        assert 1e-11 < metrics.leakage_low < 1e-6

    def test_switching_power_dwarfs_leakage_power(self, metrics):
        assert metrics.power_rise > 100 * metrics.leakage_high * 1.2


class TestCharacterizeEdgeCases:
    def test_inverter_high_to_low_is_clean(self):
        m = characterize(Pdk(), "inverter", 1.2, 0.8, plan=FAST_PLAN)
        assert m.functional
        assert m.leakage_high < 5e-9
        assert m.leakage_low < 5e-9

    def test_inverter_low_to_high_leaks_heavily(self):
        # The paper's core premise: an inverter cannot be used when
        # VDDI < VDDO because the PMOS never turns off.
        m = characterize(Pdk(), "inverter", 0.8, 1.2, plan=FAST_PLAN)
        assert m.leakage_low > 100e-9

    def test_cvs_non_inverting_measured(self):
        m = characterize(Pdk(), "cvs", 0.8, 1.2, plan=FAST_PLAN)
        assert m.functional
        assert m.delay_rise > 0

    def test_nonfunctional_sample_returns_nan(self):
        # A shift far outside the working range must be reported as
        # non-functional rather than crash: 0.8 V input into a 2.6 V
        # domain leaves every ctrl path below threshold.
        m = characterize(Pdk(), "sstvs", 0.3, 1.2, plan=FAST_PLAN)
        if not m.functional:
            assert math.isnan(m.delay_rise) or m.delay_rise > 0


class TestQuickDelays:
    def test_matches_full_characterization_roughly(self):
        pdk = Pdk()
        quick = quick_delays(pdk, "sstvs", 0.8, 1.2)
        full = characterize(pdk, "sstvs", 0.8, 1.2, plan=FAST_PLAN)
        assert quick.functional
        # quick uses the long-charge edge; full reports worst case, so
        # full >= quick modulo measurement noise.
        assert quick.delay_rise <= full.delay_rise * 1.3
        assert quick.delay_fall <= full.delay_fall * 1.3

    def test_all_kinds_quick(self):
        pdk = Pdk()
        for kind in ("sstvs", "combined", "inverter"):
            q = quick_delays(pdk, kind, 1.2, 0.8)
            assert q.functional, kind


class TestLevelShifterFacade:
    def test_unknown_kind(self):
        with pytest.raises(AnalysisError):
            LevelShifter("warp_core")

    def test_default_pdk(self):
        shifter = LevelShifter("sstvs")
        assert shifter.pdk.temperature_c == 27.0

    def test_at_temperature_clones(self):
        hot = LevelShifter("sstvs").at_temperature(90.0)
        assert hot.pdk.temperature_c == 90.0
        assert hot.kind == "sstvs"

    def test_characterize_passthrough(self):
        m = LevelShifter("sstvs").characterize(1.2, 0.8, plan=FAST_PLAN)
        assert m.functional
