"""Tests for liberty-style characterization."""

import numpy as np
import pytest

from repro.core.libchar import (
    CellCharacterization, NldmTable, characterize_cell, write_liberty,
)
from repro.errors import AnalysisError
from repro.pdk import Pdk

SLEWS = (20e-12, 150e-12)
LOADS = (0.5e-15, 4e-15)


@pytest.fixture(scope="module")
def inverter_cell():
    return characterize_cell("inverter", Pdk(), 1.2, 1.2,
                             slews=SLEWS, loads=LOADS)


class TestNldmTable:
    def _table(self):
        return NldmTable(np.asarray([1.0, 2.0]), np.asarray([10., 20.]),
                         np.asarray([[1.0, 2.0], [3.0, 4.0]]))

    def test_corner_lookup(self):
        table = self._table()
        assert table.lookup(1.0, 10.0) == 1.0
        assert table.lookup(2.0, 20.0) == 4.0

    def test_bilinear_center(self):
        assert self._table().lookup(1.5, 15.0) == pytest.approx(2.5)

    def test_clamping_outside(self):
        table = self._table()
        assert table.lookup(0.0, 0.0) == 1.0
        assert table.lookup(99.0, 99.0) == 4.0

    def test_max_value(self):
        assert self._table().max_value() == 4.0


class TestCharacterizeInverter:
    def test_table_shapes(self, inverter_cell):
        arc = inverter_cell.arc
        assert arc.cell_rise.values.shape == (2, 2)
        assert np.all(np.isfinite(arc.cell_rise.values))
        assert np.all(np.isfinite(arc.fall_transition.values))

    def test_delay_grows_with_load(self, inverter_cell):
        values = inverter_cell.arc.cell_rise.values
        assert np.all(values[:, 1] > values[:, 0])

    def test_delay_grows_with_slew(self, inverter_cell):
        values = inverter_cell.arc.cell_rise.values
        assert np.all(values[1, :] > values[0, :])

    def test_transition_grows_with_load(self, inverter_cell):
        values = inverter_cell.arc.rise_transition.values
        assert np.all(values[:, 1] > values[:, 0])

    def test_input_capacitance_positive(self, inverter_cell):
        assert 1e-16 < inverter_cell.input_capacitance < 1e-13

    def test_inverting_flag(self, inverter_cell):
        assert inverter_cell.arc.inverting

    def test_needs_two_points_per_axis(self):
        with pytest.raises(AnalysisError):
            characterize_cell("inverter", Pdk(), 1.2, 1.2,
                              slews=(20e-12,), loads=LOADS)


class TestCharacterizeShifter:
    def test_sstvs_tables_finite(self):
        cell = characterize_cell("sstvs", Pdk(), 0.8, 1.2,
                                 slews=SLEWS, loads=LOADS)
        assert np.all(np.isfinite(cell.arc.cell_rise.values))
        assert np.all(np.isfinite(cell.arc.cell_fall.values))
        # Level shifting is slower than plain inversion.
        assert cell.arc.cell_rise.values.min() > 20e-12


class TestWriteLiberty:
    def test_structure(self, inverter_cell):
        text = write_liberty([inverter_cell])
        assert text.startswith("library (repro_lvl)")
        assert "lu_table_template" in text
        assert "cell (" in text
        assert "timing_sense : negative_unate" in text
        assert text.count("values (") == 4

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            write_liberty([])

    def test_multiple_cells(self, inverter_cell):
        text = write_liberty([inverter_cell, inverter_cell])
        assert text.count("cell (") == 2
