"""Tests for metric dataclasses and aggregation."""

import math

import pytest

from repro.core.metrics import (
    METRIC_FIELDS, MetricStatistics, ShifterMetrics, aggregate,
)


def metrics(scale=1.0, functional=True):
    return ShifterMetrics(
        delay_rise=20e-12 * scale, delay_fall=30e-12 * scale,
        power_rise=2e-6 * scale, power_fall=1e-6 * scale,
        leakage_high=10e-9 * scale, leakage_low=4e-9 * scale,
        functional=functional)


class TestShifterMetrics:
    def test_as_dict_covers_all_fields(self):
        d = metrics().as_dict()
        assert set(d) == set(METRIC_FIELDS)

    def test_ratio_to(self):
        base = metrics()
        worse = metrics(scale=2.0)
        ratios = base.ratio_to(worse)
        for name in METRIC_FIELDS:
            assert ratios[name] == pytest.approx(2.0)

    def test_pretty_contains_labels(self):
        text = metrics().pretty("title")
        assert "title" in text
        assert "Delay Rise" in text
        assert "Leakage Current High" in text

    def test_frozen(self):
        with pytest.raises(AttributeError):
            metrics().delay_rise = 1.0


class TestAggregate:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_single_sample_zero_std(self):
        stats = aggregate([metrics()])
        assert stats.runs == 1
        assert stats.std.delay_rise == 0.0
        assert stats.mean.delay_rise == pytest.approx(20e-12)

    def test_mean_and_std(self):
        stats = aggregate([metrics(1.0), metrics(3.0)])
        assert stats.mean.delay_rise == pytest.approx(40e-12)
        # ddof=1 sample std of {20, 60} ps.
        assert stats.std.delay_rise == pytest.approx(
            (2 * (20e-12) ** 2) ** 0.5)

    def test_functional_yield(self):
        stats = aggregate([metrics(), metrics(functional=False),
                           metrics(), metrics()])
        assert stats.functional_yield == pytest.approx(0.75)

    def test_pretty_mentions_yield(self):
        stats = aggregate([metrics()])
        assert "yield=100.0%" in stats.pretty()

    def test_nan_samples_propagate_not_crash(self):
        nan = float("nan")
        broken = ShifterMetrics(nan, nan, nan, nan, nan, nan,
                                functional=False)
        stats = aggregate([metrics(), broken])
        assert math.isnan(stats.mean.delay_rise)
        assert stats.functional_yield == 0.5
