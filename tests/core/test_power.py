"""Tests for the per-device energy breakdown."""

import pytest

from repro.core.characterize import StimulusPlan, run_stimulus
from repro.core.power import energy_breakdown
from repro.errors import AnalysisError
from repro.pdk import Pdk

PLAN = StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9)


@pytest.fixture(scope="module")
def sstvs_run():
    return run_stimulus(Pdk(), "sstvs", 0.8, 1.2, PLAN)


class TestEnergyBreakdown:
    def test_switching_window_energy_positive(self, sstvs_run):
        result, probes = sstvs_run
        # Output falls at the first input rise: real switching energy.
        breakdown = energy_breakdown(result, probes.dut_supply,
                                     PLAN.t_rise_a, PLAN.t_rise_a + 0.5e-9)
        assert breakdown.supply_energy > 1e-16

    def test_quiet_window_energy_small(self, sstvs_run):
        result, probes = sstvs_run
        active = energy_breakdown(result, probes.dut_supply,
                                  PLAN.t_rise_a, PLAN.t_rise_a + 0.5e-9)
        quiet = energy_breakdown(result, probes.dut_supply,
                                 PLAN.t_fall_b - 0.6e-9,
                                 PLAN.t_fall_b - 0.1e-9)
        assert abs(quiet.supply_energy) < active.supply_energy / 10

    def test_device_dissipation_covers_dut(self, sstvs_run):
        result, probes = sstvs_run
        breakdown = energy_breakdown(result, probes.dut_supply,
                                     PLAN.t_rise_a, PLAN.t_rise_a + 0.5e-9)
        assert any(name.startswith("dut.") for name in
                   breakdown.device_dissipation)
        assert all(e >= 0 for e in
                   breakdown.device_dissipation.values())

    def test_top_consumers_sorted(self, sstvs_run):
        result, probes = sstvs_run
        breakdown = energy_breakdown(result, probes.dut_supply,
                                     PLAN.t_rise_a, PLAN.t_rise_a + 0.5e-9)
        top = breakdown.top_consumers(3)
        energies = [e for _, e in top]
        assert energies == sorted(energies, reverse=True)

    def test_average_power_consistent(self, sstvs_run):
        result, probes = sstvs_run
        breakdown = energy_breakdown(result, probes.dut_supply,
                                     PLAN.t_rise_a, PLAN.t_rise_a + 0.5e-9)
        assert breakdown.average_power == pytest.approx(
            breakdown.supply_energy / breakdown.window)

    def test_empty_window_rejected(self, sstvs_run):
        result, probes = sstvs_run
        with pytest.raises(AnalysisError):
            energy_breakdown(result, probes.dut_supply, 1e-9, 1e-9)

    def test_pretty_output(self, sstvs_run):
        result, probes = sstvs_run
        text = energy_breakdown(result, probes.dut_supply,
                                PLAN.t_rise_a,
                                PLAN.t_rise_a + 0.5e-9).pretty("title")
        assert "title" in text
        assert "supply energy" in text

    def test_subsampling_cap(self, sstvs_run):
        result, probes = sstvs_run
        full = energy_breakdown(result, probes.dut_supply,
                                PLAN.t_rise_a, PLAN.t_rise_a + 0.5e-9,
                                max_samples=400)
        coarse = energy_breakdown(result, probes.dut_supply,
                                  PLAN.t_rise_a, PLAN.t_rise_a + 0.5e-9,
                                  max_samples=20)
        assert coarse.supply_energy == pytest.approx(
            full.supply_energy, rel=0.3)
