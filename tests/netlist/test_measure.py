"""Tests for the .measure mini-language."""

import pytest

from repro.errors import NetlistError
from repro.netlist.measure import parse_measures, run_measures
from repro.spice import Circuit, Transient
from repro.spice.devices import Capacitor, Pulse, Resistor, VoltageSource


@pytest.fixture(scope="module")
def rc_result():
    ckt = Circuit("rc")
    ckt.add(VoltageSource("vin", "in", "0", shape=Pulse(
        0, 1, delay=1e-9, rise=1e-12, fall=1e-12, width=20e-9,
        period=80e-9)))
    ckt.add(Resistor("r", "in", "out", 1e3))
    ckt.add(Capacitor("c", "out", "0", 1e-12))
    return Transient(ckt, 6e-9).run()


class TestParsing:
    def test_delay_statement(self):
        measures = parse_measures(
            ".measure tran tpd trig v(in) val=0.5 rise=1 "
            "targ v(out) val=0.5 rise=1\n")
        assert len(measures) == 1
        assert measures[0].name == "tpd"
        assert measures[0].kind == "delay"

    def test_aggregate_statements(self):
        text = (".measure tran a avg v(out) from=1n to=2n\n"
                ".measure tran b integ i(vin) from=0 to=5n\n"
                ".measure tran c max v(out)\n"
                ".measure tran d min v(out)\n")
        kinds = [m.kind for m in parse_measures(text)]
        assert kinds == ["avg", "integ", "max", "min"]

    def test_find_statement(self):
        measures = parse_measures(
            ".measure tran vf find v(out) at=4n\n")
        assert measures[0].kind == "find"

    def test_non_measure_lines_ignored(self):
        assert parse_measures("r1 a b 1k\n* comment\n") == []

    def test_analysis_keyword_optional(self):
        measures = parse_measures(".measure m1 max v(out)\n")
        assert measures[0].name == "m1"

    def test_unsupported_kind(self):
        with pytest.raises(NetlistError):
            parse_measures(".measure tran x deriv v(out)\n")

    def test_missing_name(self):
        with pytest.raises(NetlistError):
            parse_measures(".measure tran\n")


class TestEvaluation:
    def test_rc_delay_one_tau(self, rc_result):
        # From the input edge to out crossing 63.2 % is ~1 tau (1 ns).
        values = run_measures(
            ".measure tran tpd trig v(in) val=0.5 rise=1 "
            "targ v(out) val=0.632 rise=1\n", rc_result)
        assert values["tpd"] == pytest.approx(1e-9, rel=0.03)

    def test_find_at_time(self, rc_result):
        values = run_measures(
            ".measure tran vf find v(out) at=2n\n", rc_result)
        import math
        assert values["vf"] == pytest.approx(1 - math.exp(-1), abs=0.01)

    def test_max_of_output(self, rc_result):
        values = run_measures(".measure tran m max v(out)\n", rc_result)
        assert 0.9 < values["m"] <= 1.01

    def test_integ_of_supply_current(self, rc_result):
        # Total charge ~ C dV = 1 pC delivered (branch current is
        # negative for a sourcing supply).
        values = run_measures(
            ".measure tran q integ i(vin) from=0.9n to=6n\n", rc_result)
        assert values["q"] == pytest.approx(-1e-12, rel=0.05)

    def test_avg_window(self, rc_result):
        values = run_measures(
            ".measure tran a avg v(in) from=2n to=4n\n", rc_result)
        assert values["a"] == pytest.approx(1.0, abs=0.01)

    def test_fall_edge_targeting(self, rc_result):
        # No falling output edge within the window -> error.
        from repro.errors import MeasurementError
        with pytest.raises(MeasurementError):
            run_measures(
                ".measure tran bad trig v(in) val=0.5 rise=1 "
                "targ v(out) val=0.5 fall=1\n", rc_result)

    def test_bad_signal_expression(self, rc_result):
        with pytest.raises(NetlistError):
            run_measures(".measure tran x max w(out)\n", rc_result)

    def test_continuation_lines(self, rc_result):
        values = run_measures(
            ".measure tran tpd trig v(in) val=0.5 rise=1\n"
            "+ targ v(out) val=0.632 rise=1\n", rc_result)
        assert values["tpd"] == pytest.approx(1e-9, rel=0.03)
