"""Tests for deck writing, including parse -> write -> parse round trips."""

import pytest

from repro.netlist import parse_deck, write_deck
from repro.spice import Circuit, OperatingPoint
from repro.spice.devices import (
    Capacitor, CurrentSource, Diode, Pulse, Pwl, Resistor, Sin,
    VoltageSource,
)


class TestWriteDeck:
    def test_title_comment(self):
        ckt = Circuit("hello")
        ckt.add(Resistor("r1", "a", "0", 1e3))
        deck = write_deck(ckt)
        assert deck.splitlines()[0] == "* hello"
        assert deck.rstrip().endswith(".end")

    def test_resistor_line(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "b", 4700.0))
        assert "r1 a b 4.7k" in write_deck(ckt)

    def test_sources_all_shapes(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", "0", dc=1.0))
        ckt.add(VoltageSource("v2", "b", "0", shape=Pulse(
            0, 1, 1e-9, 1e-11, 1e-11, 1e-9, 4e-9)))
        ckt.add(VoltageSource("v3", "c", "0", shape=Pwl(
            [(1e-9, 0.0), (2e-9, 1.0)])))
        ckt.add(VoltageSource("v4", "d", "0", shape=Sin(0.5, 0.2, 1e9)))
        ckt.add(CurrentSource("i1", "a", "0", dc=1e-3))
        deck = write_deck(ckt)
        assert "DC 1" in deck
        assert "PULSE(" in deck
        assert "PWL(" in deck
        assert "SIN(" in deck

    def test_mosfet_model_card_emitted(self, pdk):
        ckt = Circuit("t")
        ckt.add(pdk.mosfet("m1", "d", "g", "s", "0", "n", 0.2e-6))
        deck = write_deck(ckt)
        assert ".model" in deck
        assert "nmos" in deck

    def test_model_cards_deduplicated(self, pdk):
        ckt = Circuit("t")
        ckt.add(pdk.mosfet("m1", "d", "g", "s", "0", "n", 0.2e-6))
        ckt.add(pdk.mosfet("m2", "d2", "g2", "s2", "0", "n", 0.4e-6))
        deck = write_deck(ckt)
        assert deck.count(".model") == 1

    def test_parasitics_skipped(self, pdk):
        ckt = Circuit("t")
        ckt.add(pdk.mosfet("m1", "d", "g", "s", "0", "n", 0.2e-6))
        deck = write_deck(ckt)
        assert "#" not in deck
        assert "m1_cgs" not in deck


class TestRoundTrip:
    def test_rc_roundtrip_op(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("vin", "in", "0", dc=1.0))
        ckt.add(Resistor("r1", "in", "mid", 1e3))
        ckt.add(Resistor("r2", "mid", "0", 3e3))
        ckt.add(Capacitor("c1", "mid", "0", 1e-12))
        deck = write_deck(ckt)
        clone = parse_deck(deck, title_line=True)
        op1 = OperatingPoint(ckt).run()
        op2 = OperatingPoint(clone).run()
        assert op2["mid"] == pytest.approx(op1["mid"], rel=1e-6)

    def test_mos_roundtrip_op(self, pdk):
        from repro.cells import add_inverter
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        ckt.add(VoltageSource("vin", "in", "0", dc=1.2))
        add_inverter(ckt, pdk, "inv", "in", "out", "vdd")
        deck = write_deck(ckt)
        clone = parse_deck(deck, title_line=True)
        op1 = OperatingPoint(ckt).run()
        op2 = OperatingPoint(clone).run()
        assert op2["out"] == pytest.approx(op1["out"], abs=1e-4)
        # Leakage currents must also survive the round trip.
        assert op2.supply_current("vdd") == \
            pytest.approx(op1.supply_current("vdd"), rel=0.01)

    def test_diode_roundtrip(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=2.0))
        ckt.add(Resistor("r", "a", "d", 1e3))
        ckt.add(Diode("d1", "d", "0"))
        clone = parse_deck(write_deck(ckt), title_line=True)
        op1 = OperatingPoint(ckt).run()
        op2 = OperatingPoint(clone).run()
        assert op2["d"] == pytest.approx(op1["d"], rel=1e-4)

    def test_double_roundtrip_stable(self, pdk):
        ckt = Circuit("t")
        ckt.add(pdk.mosfet("m1", "d", "g", "s", "0", "n", 0.2e-6))
        ckt.add(VoltageSource("v", "d", "0", dc=1.0))
        deck1 = write_deck(ckt)
        deck2 = write_deck(parse_deck(deck1, title_line=True))
        # Same statement count either way.
        assert len(deck1.splitlines()) == len(deck2.splitlines())
