"""Tests for netlist lexing."""

import pytest

from repro.errors import NetlistError
from repro.netlist.lexer import lex, split_parens_args


class TestLex:
    def test_simple_statements(self):
        stmts = lex("r1 a b 1k\nc1 b 0 1p\n")
        assert len(stmts) == 2
        assert stmts[0].tokens == ("r1", "a", "b", "1k")
        assert stmts[1].line == 2

    def test_comment_lines_skipped(self):
        stmts = lex("* a comment\nr1 a b 1k\n")
        assert len(stmts) == 1

    def test_blank_lines_skipped(self):
        stmts = lex("\n\nr1 a b 1k\n\n")
        assert len(stmts) == 1

    def test_trailing_comment_stripped(self):
        stmts = lex("r1 a b 1k $ load resistor\n")
        assert stmts[0].tokens == ("r1", "a", "b", "1k")

    def test_semicolon_comment(self):
        stmts = lex("r1 a b 1k ; note\n")
        assert stmts[0].tokens == ("r1", "a", "b", "1k")

    def test_continuation_joined(self):
        stmts = lex("v1 a 0 pulse\n+ 0 1 1n\n")
        assert stmts[0].tokens == ("v1", "a", "0", "pulse", "0", "1", "1n")

    def test_orphan_continuation_raises(self):
        with pytest.raises(NetlistError, match="continuation"):
            lex("+ 1 2 3\n")

    def test_keyword_lowercased(self):
        stmts = lex(".MODEL foo NMOS\n")
        assert stmts[0].keyword == ".model"

    def test_line_numbers_after_comments(self):
        stmts = lex("* one\n* two\nr1 a b 1\n")
        assert stmts[0].line == 3


class TestSplitParens:
    def test_pulse_args(self):
        tokens = split_parens_args(["PULSE(0", "1", "1n)"])
        assert tokens == ["PULSE", "0", "1", "1n"]

    def test_commas_removed(self):
        assert split_parens_args(["PWL(0,0", "1n,1)"]) == \
            ["PWL", "0", "0", "1n", "1"]

    def test_plain_tokens_untouched(self):
        assert split_parens_args(["a", "b"]) == ["a", "b"]
