"""Tests for the SPICE deck parser."""

import pytest

from repro.errors import NetlistError
from repro.netlist import parse_deck
from repro.spice import OperatingPoint, Transient
from repro.spice.devices import (
    Capacitor, CurrentSource, Diode, Mosfet, Resistor, VoltageSource,
)
from repro.spice.devices.sources import Dc, Pulse, Pwl, Sin

MODELS = """
.model nch nmos (vto=0.39 u0=0.018)
.model pch pmos (vto=0.35 u0=0.008)
"""


class TestElements:
    def test_resistor(self):
        ckt = parse_deck("r1 a b 4.7k\n")
        device = ckt.device("r1")
        assert isinstance(device, Resistor)
        assert device.resistance == pytest.approx(4700.0)

    def test_capacitor(self):
        ckt = parse_deck("cload out 0 2.5f\n")
        assert ckt.device("cload").capacitance == pytest.approx(2.5e-15)

    def test_dc_voltage_source_with_keyword(self):
        ckt = parse_deck("v1 a 0 DC 1.2\n")
        assert isinstance(ckt.device("v1").shape, Dc)
        assert ckt.device("v1").value(0) == 1.2

    def test_dc_voltage_source_bare(self):
        ckt = parse_deck("v1 a 0 0.8\n")
        assert ckt.device("v1").value(0) == 0.8

    def test_pulse_source(self):
        ckt = parse_deck("v1 a 0 PULSE(0 1.2 1n 10p 10p 2n 8n)\n")
        shape = ckt.device("v1").shape
        assert isinstance(shape, Pulse)
        assert shape.period == pytest.approx(8e-9)

    def test_pulse_without_period(self):
        ckt = parse_deck("v1 a 0 PULSE(0 1 0 1p 1p 1n)\n")
        assert isinstance(ckt.device("v1").shape, Pulse)

    def test_pwl_source(self):
        ckt = parse_deck("v1 a 0 PWL(0.1n 0 1n 1 2n 0.5)\n")
        shape = ckt.device("v1").shape
        assert isinstance(shape, Pwl)
        assert shape.value(1e-9) == pytest.approx(1.0)

    def test_sin_source(self):
        ckt = parse_deck("v1 a 0 SIN(0.6 0.4 1g)\n")
        assert isinstance(ckt.device("v1").shape, Sin)

    def test_current_source(self):
        ckt = parse_deck("iload a 0 1m\n")
        assert isinstance(ckt.device("iload"), CurrentSource)

    def test_diode(self):
        ckt = parse_deck("d1 a 0\n")
        assert isinstance(ckt.device("d1"), Diode)

    def test_mosfet_with_model(self):
        ckt = parse_deck(MODELS + "m1 d g s b nch W=0.2u L=0.1u\n")
        device = ckt.device("m1")
        assert isinstance(device, Mosfet)
        assert device.w == pytest.approx(0.2e-6)
        assert device.params.vto == pytest.approx(0.39)

    def test_mosfet_multiplier(self):
        ckt = parse_deck(MODELS + "m1 d g s b nch W=0.2u L=0.1u M=3\n")
        assert ckt.device("m1").m == 3

    def test_mosfet_unknown_model(self):
        with pytest.raises(NetlistError, match="unknown MOSFET model"):
            parse_deck("m1 d g s b ghost W=1u L=1u\n")

    def test_mosfet_missing_wl(self):
        with pytest.raises(NetlistError, match="W= and L="):
            parse_deck(MODELS + "m1 d g s b nch W=1u\n")


class TestModels:
    def test_model_defaults_from_pdk(self):
        ckt = parse_deck(".model n1 nmos ()\nm1 d g s b n1 W=1u L=0.1u\n")
        assert ckt.device("m1").params.vto == pytest.approx(0.39, abs=0.01)

    def test_model_override(self):
        ckt = parse_deck(".model n1 nmos (vto=0.5 eta_dibl=0.01)\n"
                         "m1 d g s b n1 W=1u L=0.1u\n")
        params = ckt.device("m1").params
        assert params.vto == 0.5
        assert params.eta_dibl == 0.01

    def test_unknown_model_key(self):
        with pytest.raises(NetlistError, match="unknown model parameter"):
            parse_deck(".model n1 nmos (frobnicate=1)\n")

    def test_unsupported_model_type(self):
        with pytest.raises(NetlistError, match="unsupported model type"):
            parse_deck(".model q1 npn ()\n")


class TestSubcircuits:
    DECK = MODELS + """
.subckt inv in out vdd
mn out in 0 0 nch W=0.2u L=0.1u
mp out in vdd vdd pch W=0.4u L=0.1u
.ends
vdd vdd 0 1.2
vin in 0 0
x1 in mid vdd inv
x2 mid out vdd inv
.end
"""

    def test_flattening_names(self):
        ckt = parse_deck(self.DECK)
        assert "x1.mn" in ckt
        assert "x2.mp" in ckt

    def test_internal_nodes_prefixed(self):
        deck = MODELS + """
.subckt buf in out vdd
mn mid in 0 0 nch W=0.2u L=0.1u
mp mid in vdd vdd pch W=0.4u L=0.1u
mn2 out mid 0 0 nch W=0.2u L=0.1u
mp2 out mid vdd vdd pch W=0.4u L=0.1u
.ends
vdd vdd 0 1.2
vin in 0 1.2
xb in out vdd buf
"""
        ckt = parse_deck(deck)
        ckt.finalize()
        assert "xb.mid" in ckt.node_names()

    def test_two_inverter_buffer_logic(self):
        ckt = parse_deck(self.DECK)
        op = OperatingPoint(ckt).run()
        assert op["out"] == pytest.approx(0.0, abs=0.01)
        assert op["mid"] == pytest.approx(1.2, abs=0.01)

    def test_port_count_mismatch(self):
        deck = MODELS + (".subckt inv in out vdd\n"
                         "mn out in 0 0 nch W=1u L=0.1u\n.ends\n"
                         "x1 a b inv\n")
        with pytest.raises(NetlistError, match="ports"):
            parse_deck(deck)

    def test_unknown_subckt(self):
        with pytest.raises(NetlistError, match="unknown subcircuit"):
            parse_deck("x1 a b ghost\n")

    def test_missing_ends(self):
        with pytest.raises(NetlistError, match="missing .ends"):
            parse_deck(".subckt inv a b\nr1 a b 1k\n")

    def test_nested_subckt_rejected(self):
        with pytest.raises(NetlistError, match="nested"):
            parse_deck(".subckt a x\n.subckt b y\n.ends\n.ends\n")


class TestDirectives:
    def test_end_stops_parsing(self):
        ckt = parse_deck("r1 a 0 1k\n.end\nr2 b 0 1k\n")
        assert "r1" in ckt
        assert "r2" not in ckt

    def test_unknown_directive(self):
        with pytest.raises(NetlistError, match="unsupported directive"):
            parse_deck(".tran 1n 10n\n")

    def test_unsupported_element(self):
        with pytest.raises(NetlistError, match="unsupported element"):
            parse_deck("q1 c b e bjtmodel\n")

    def test_title_line_skipped_when_flagged(self):
        ckt = parse_deck("my circuit title\nr1 a 0 1k\n",
                         title_line=True)
        assert "r1" in ckt
