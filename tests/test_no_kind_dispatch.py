"""Lint: cell-kind string dispatch must not regrow outside the registry.

The registry refactor deleted every ``kind == "..."`` branch from the
benches, analyses and CLI; the one legitimate place to interpret a
cell kind is :mod:`repro.cells.registry`. This walks the source tree
and fails on any comparison against a bare ``kind`` name anywhere
else, so a future "quick fix" can't quietly reintroduce dispatch that
new registered cells would fall through.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: The registry is the single allowed interpreter of cell kinds.
ALLOWED = {SRC / "cells" / "registry.py"}

#: A bare ``kind`` compared for equality; attribute access
#: (``self.kind ==``, ``spec.kind !=``) stays legal — those are typed
#: fields of non-cell domains (faults, measurements), not dispatch.
PATTERN = re.compile(r"(?<![.\w])kind\s*(==|!=)")


def test_no_kind_comparisons_outside_the_registry():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            if PATTERN.search(line):
                offenders.append(
                    f"{path.relative_to(SRC.parent.parent)}:{lineno}: "
                    f"{line.strip()}")
    assert not offenders, (
        "cell-kind string dispatch outside repro.cells.registry:\n  "
        + "\n  ".join(offenders))
