"""Lint: cell-kind string dispatch must not regrow outside the registry.

The registry refactor deleted every ``kind == "..."`` branch from the
benches, analyses and CLI; the one legitimate place to interpret a
cell kind is :mod:`repro.cells.registry`. This walks the source tree
and fails on any comparison against a bare ``kind`` name anywhere
else, so a future "quick fix" can't quietly reintroduce dispatch that
new registered cells would fall through.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: The registry is the single allowed interpreter of cell kinds.
ALLOWED = {SRC / "cells" / "registry.py"}

#: A bare ``kind`` compared for equality; attribute access
#: (``self.kind ==``, ``spec.kind !=``) stays legal — those are typed
#: fields of non-cell domains (faults, measurements), not dispatch.
PATTERN = re.compile(r"(?<![.\w])kind\s*(==|!=)")


#: Shifter cells must be reached through :func:`get_cell`; importing a
#: concrete ``add_*`` builder outside :mod:`repro.cells` hard-codes a
#: topology and bypasses every registered property (area probe, rail /
#: select wiring flags, leakage bench). ``add_inverter`` is exempt: the
#: testbench layer legitimately uses it as a raw driver/load primitive,
#: not as a level-shifter choice.
SHIFTER_BUILDERS = ("add_sstvs", "add_cvs", "add_combined_vs",
                    "add_ssvs_khan", "add_ssvs_puri", "add_lpls_split",
                    "add_lpls_pass", "add_ulpls")

BUILDER_PATTERN = re.compile(
    r"(?<![.\w])(" + "|".join(SHIFTER_BUILDERS) + r")\b")

#: The cells package itself defines, registers and re-exports builders.
BUILDER_ALLOWED_DIRS = {SRC / "cells"}


def _offenders(pattern, allowed_files=(), allowed_dirs=()):
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in allowed_files:
            continue
        if any(parent in allowed_dirs for parent in path.parents):
            continue
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            if pattern.search(line):
                offenders.append(
                    f"{path.relative_to(SRC.parent.parent)}:{lineno}: "
                    f"{line.strip()}")
    return offenders


def test_no_kind_comparisons_outside_the_registry():
    offenders = _offenders(PATTERN, allowed_files=ALLOWED)
    assert not offenders, (
        "cell-kind string dispatch outside repro.cells.registry:\n  "
        + "\n  ".join(offenders))


def test_no_shifter_builder_imports_outside_cells():
    offenders = _offenders(BUILDER_PATTERN,
                           allowed_dirs=BUILDER_ALLOWED_DIRS)
    assert not offenders, (
        "shifter builders referenced outside repro.cells (use "
        "get_cell(...).build / the registry spec instead):\n  "
        + "\n  ".join(offenders))
