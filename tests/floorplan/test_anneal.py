"""Annealer invariants: sequence-pair legality, seed determinism,
incumbent monotonicity — property-based where the space is cheap to
sample."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan import (
    ObjectiveWeights, anneal_floorplan, assign_shifters, default_moves,
    generate_design, pack_sequence_pair,
)

pytestmark = pytest.mark.floorplan

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _overlap(a, b) -> bool:
    ax, ay, aw, ah = a
    bx, by, bw, bh = b
    return (ax < bx + bw and bx < ax + aw
            and ay < by + bh and by < ay + ah)


def _floorplanned(design_seed: int, anneal_seed: int, blocks: int = 8,
                  moves: int = 120):
    design = generate_design(blocks=blocks, domains=3,
                             seed=design_seed)
    assignment = assign_shifters(design, "sstvs",
                                 characterize_leakage=False)
    return design, anneal_floorplan(design, assignment,
                                    seed=anneal_seed, moves=moves)


class TestSequencePair:
    @settings(max_examples=40, deadline=None)
    @given(st.data(), st.integers(min_value=1, max_value=10))
    def test_packing_is_overlap_free_and_in_bbox(self, data, n):
        """Any (gamma+, gamma-) pair packs to a legal placement — the
        representation cannot express an overlap."""
        gamma_pos = data.draw(st.permutations(range(n)))
        gamma_neg = data.draw(st.permutations(range(n)))
        widths = data.draw(st.lists(
            st.floats(min_value=1.0, max_value=100.0),
            min_size=n, max_size=n))
        heights = data.draw(st.lists(
            st.floats(min_value=1.0, max_value=100.0),
            min_size=n, max_size=n))
        x, y, total_w, total_h = pack_sequence_pair(
            gamma_pos, gamma_neg, widths, heights)
        rects = [(x[i], y[i], widths[i], heights[i]) for i in range(n)]
        for i in range(n):
            assert x[i] >= 0.0 and y[i] >= 0.0
            assert x[i] + widths[i] <= total_w + 1e-9
            assert y[i] + heights[i] <= total_h + 1e-9
            for j in range(i + 1, n):
                assert not _overlap(rects[i], rects[j]), (i, j)

    def test_left_of_relation(self):
        # b0 before b1 in both sequences => b0 strictly left of b1.
        x, y, w, h = pack_sequence_pair([0, 1], [0, 1],
                                        [10.0, 20.0], [5.0, 5.0])
        assert x[0] + 10.0 <= x[1]
        assert (w, h) == (30.0, 5.0)

    def test_below_relation(self):
        # b0 after b1 in gamma+ but before in gamma- => b0 below b1.
        x, y, w, h = pack_sequence_pair([1, 0], [0, 1],
                                        [10.0, 20.0], [5.0, 7.0])
        assert y[0] + 5.0 <= y[1]
        assert (w, h) == (20.0, 12.0)


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(seeds, seeds)
    def test_same_seed_bitwise_identical(self, design_seed,
                                         anneal_seed):
        """The whole result — placement, cost, acceptance counters —
        is a pure function of (design, seed, moves)."""
        _, a = _floorplanned(design_seed, anneal_seed)
        _, b = _floorplanned(design_seed, anneal_seed)
        assert a.digest() == b.digest()
        assert a.cost.hex() == b.cost.hex()
        assert a.positions == b.positions
        assert (a.accepted, a.evaluated, a.incumbent_move) == \
            (b.accepted, b.evaluated, b.incumbent_move)

    def test_different_seeds_explore_differently(self):
        _, a = _floorplanned(0, 1)
        _, b = _floorplanned(0, 2)
        assert a.digest() != b.digest()


class TestResultLegality:
    @settings(max_examples=15, deadline=None)
    @given(seeds)
    def test_incumbent_places_all_modules_without_overlap(self, seed):
        design, result = _floorplanned(design_seed=3, anneal_seed=seed)
        assert set(result.positions) == \
            {m.name for m in design.modules}
        rects = list(result.positions.values())
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                assert not _overlap(rects[i], rects[j])

    @settings(max_examples=15, deadline=None)
    @given(seeds)
    def test_annealing_never_worsens_the_incumbent(self, seed):
        """The returned cost is the best cost seen, so it can only
        improve on the initial (moves=0) packing."""
        _, initial = _floorplanned(design_seed=5, anneal_seed=seed,
                                   moves=0)
        _, annealed = _floorplanned(design_seed=5, anneal_seed=seed,
                                    moves=150)
        assert annealed.cost <= initial.cost

    def test_rotation_preserves_block_area(self):
        design, result = _floorplanned(design_seed=2, anneal_seed=9)
        by_name = design.module_map()
        for name, (_, _, w, h) in result.positions.items():
            module = by_name[name]
            assert {w, h} == {module.width, module.height}


class TestKnobs:
    def test_default_moves_scales_with_blocks(self):
        assert default_moves(10) == 2000
        assert default_moves(1000) == 4000

    def test_weights_steer_the_objective(self):
        design = generate_design(blocks=8, domains=3, seed=0)
        assignment = assign_shifters(design, "cvs",
                                     characterize_leakage=False)
        heavy = anneal_floorplan(
            design, assignment, seed=0, moves=150,
            weights=ObjectiveWeights(rail=500.0))
        light = anneal_floorplan(
            design, assignment, seed=0, moves=150,
            weights=ObjectiveWeights(rail=0.0))
        assert heavy.cost != light.cost
        assert light.breakdown.rail_length >= 0.0
