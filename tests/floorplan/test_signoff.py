"""Differential STA sign-off tests: the negative controls.

A sign-off gate that can only say MET is worthless. These tests
perturb a passing floorplan in ways that *must* flip the verdict —
slowing the shifter arc past the budget, deleting the shifter, wiring
around it — and fail if the gate doesn't notice.
"""

import pytest

from repro.errors import AnalysisError
from repro.floorplan import (
    anneal_floorplan, assign_shifters, build_crossing_netlist,
    build_timing_library, derated_characterization, generate_design,
    signoff_floorplan, synthetic_characterization,
    verify_crossing_paths,
)
from repro.sta import GateNetlist, TimingLibrary

pytestmark = pytest.mark.floorplan

REQUIRED = 2e-9


def _derated_library(library, factor, only=None):
    """Copy a library, scaling the arcs of ``only`` (or all) cells."""
    out = TimingLibrary()
    for name, cell in library.cells.items():
        if only is None or name in only:
            cell = derated_characterization(cell, factor)
        out.add(name, cell)
    return out


def _rebuilt(netlist, rewire):
    """Rebuild a netlist, applying ``name -> (cell, in, out)`` edits.

    Mutating ``instances`` directly would desynchronize the O(1)
    driver/fanout indexes; real callers always construct netlists
    through add_instance, so the negative controls do too.
    """
    out = GateNetlist(netlist.name)
    for inst in netlist.instances.values():
        cell, input_net, output_net = (inst.cell, inst.input_net,
                                       inst.output_net)
        if inst.name in rewire:
            cell, input_net, output_net = rewire[inst.name](inst)
        out.add_instance(inst.name, cell, input_net, output_net)
    for net in netlist.primary_inputs:
        out.add_primary_input(net)
    for net in netlist.primary_outputs:
        out.add_primary_output(net)
    for net, cap in netlist.net_wire_cap.items():
        out.set_wire_cap(net, cap)
    return out


@pytest.fixture(scope="module")
def floorplan():
    design = generate_design(blocks=10, domains=3, seed=4)
    assignment = assign_shifters(design, "sstvs",
                                 characterize_leakage=False)
    result = anneal_floorplan(design, assignment, seed=0, moves=200)
    netlist, paths = build_crossing_netlist(design, assignment,
                                            result.positions)
    library = build_timing_library(design, assignment)
    return design, assignment, netlist, paths, library


class TestPositiveControl:
    def test_nominal_floorplan_signs_off(self, floorplan):
        _, _, netlist, paths, library = floorplan
        report = signoff_floorplan(netlist, paths, library, REQUIRED)
        assert report.ok
        assert report.violations == ()
        assert report.worst_slack > 0.0
        assert len(report.arrivals) == len(paths)

    def test_summary_mentions_verdict(self, floorplan):
        _, _, netlist, paths, library = floorplan
        report = signoff_floorplan(netlist, paths, library, REQUIRED)
        assert "MET" in report.summary()


class TestSlowedArcFlipsVerdict:
    def test_derated_shifter_becomes_a_reported_violation(
            self, floorplan):
        """Scaling only the shifter arcs past the budget must flip the
        verdict AND localize the violations to crossing paths."""
        _, _, netlist, paths, library = floorplan
        shifter_cells = {p.shifter_cell for p in paths}
        factor = REQUIRED / 50e-12  # guarantees the budget is blown
        slowed = _derated_library(library, factor, only=shifter_cells)
        report = signoff_floorplan(netlist, paths, slowed, REQUIRED)
        assert not report.ok
        assert report.violations
        assert report.worst_slack < 0.0
        assert report.worst_path in paths
        assert "VIOLATED" in report.summary()

    def test_mild_derating_keeps_the_slack_ordering(self, floorplan):
        _, _, netlist, paths, library = floorplan
        nominal = signoff_floorplan(netlist, paths, library, REQUIRED)
        slowed = _derated_library(library, 1.5)
        derated = signoff_floorplan(netlist, paths, slowed, REQUIRED)
        assert derated.worst_slack < nominal.worst_slack


class TestStructuralNegativeControls:
    def test_missing_shifter_instance_rejected(self, floorplan):
        """A netlist that simply drops a required shifter must be
        rejected structurally, before any timing is run."""
        _, _, netlist, paths, _ = floorplan
        victim = paths[0]
        stripped = GateNetlist(netlist.name)
        for inst in netlist.instances.values():
            if inst.name != victim.shifter_instance:
                stripped.add_instance(inst.name, inst.cell,
                                      inst.input_net, inst.output_net)
        with pytest.raises(AnalysisError, match="shifter"):
            verify_crossing_paths(stripped, paths)

    def test_bypassed_shifter_rejected(self, floorplan):
        """Rewiring the receiver to the shifter's *input* net — the
        classic missing-level-shifter bug — must be caught even though
        the shifter instance itself is still present."""
        _, _, netlist, paths, _ = floorplan
        victim = paths[0]
        rx_name = victim.shifter_instance.replace("_ls", "_rx")
        bypassed = _rebuilt(netlist, {
            rx_name: lambda inst: (inst.cell, victim.input_net,
                                   inst.output_net)})
        assert victim.shifter_instance in bypassed.instances
        with pytest.raises(AnalysisError, match="bypass"):
            verify_crossing_paths(bypassed, paths)

    def test_wrong_cell_on_the_shifter_rejected(self, floorplan):
        _, _, netlist, paths, _ = floorplan
        victim = paths[0]
        retyped = _rebuilt(netlist, {
            victim.shifter_instance:
                lambda inst: ("inv@1.0", inst.input_net,
                              inst.output_net)})
        with pytest.raises(AnalysisError, match="shifter"):
            verify_crossing_paths(retyped, paths)


class TestWireLoading:
    def test_longer_wires_arrive_later(self):
        """Placement feeds timing: the same design signed off at a
        spread-out placement must be slower than at a compact one."""
        design = generate_design(blocks=6, domains=3, seed=1)
        assignment = assign_shifters(design, "sstvs",
                                     characterize_leakage=False)
        compact = {m.name: (0.0, 0.0, m.width, m.height)
                   for m in design.modules}
        spread = {m.name: (5000.0 * i, 5000.0 * i, m.width, m.height)
                  for i, m in enumerate(design.modules)}
        library = build_timing_library(design, assignment)
        reports = []
        for positions in (compact, spread):
            netlist, paths = build_crossing_netlist(design, assignment,
                                                    positions)
            reports.append(signoff_floorplan(netlist, paths, library,
                                             REQUIRED))
        assert reports[1].worst_slack < reports[0].worst_slack


class TestSyntheticTables:
    def test_synthetic_characterization_is_monotone_in_drive(self):
        fast = synthetic_characterization("x", "sstvs", 1.4, 1.4)
        slow = synthetic_characterization("x", "sstvs", 0.8, 0.8)
        assert (slow.arc.cell_rise.values >
                fast.arc.cell_rise.values).all()

    def test_derating_scales_all_tables(self):
        cell = synthetic_characterization("x", "sstvs", 1.0, 1.2)
        derated = derated_characterization(cell, 2.0)
        assert (derated.arc.cell_rise.values
                == 2.0 * cell.arc.cell_rise.values).all()
        assert (derated.arc.fall_transition.values
                == 2.0 * cell.arc.fall_transition.values).all()
        assert derated.input_capacitance == cell.input_capacitance
