"""Tests of the multi-voltage design layer: the synthetic generator
and the structural-Verilog bridge."""

import pytest

from repro.errors import AnalysisError
from repro.floorplan import SocDesign, design_from_verilog, generate_design
from repro.verilog import parse_verilog

pytestmark = pytest.mark.floorplan


VERILOG = """
module soc_top (input clk, output out);
  input clk;
  output out;
  wire n1, n2;
  core u_core (.A(clk), .Y(n1));
  dsp u_dsp (.A(n1), .Y(n2));
  io u_io (.A(n2), .Y(out));
endmodule
"""


class TestGenerator:
    def test_same_seed_same_design(self):
        a = generate_design(blocks=40, domains=4, seed=7)
        b = generate_design(blocks=40, domains=4, seed=7)
        assert a == b  # frozen dataclasses compare by value

    def test_different_seeds_differ(self):
        a = generate_design(blocks=40, domains=4, seed=7)
        b = generate_design(blocks=40, domains=4, seed=8)
        assert a != b

    def test_block_and_domain_counts(self):
        design = generate_design(blocks=33, domains=5, seed=0)
        assert len(design.modules) == 33
        assert len(design.domains()) == 5

    def test_connected_and_crossing_factor(self):
        design = generate_design(blocks=50, domains=4, seed=1,
                                 crossing_factor=2.0)
        assert len(design.nets) == 100
        # The spanning-arborescence backbone touches every block: the
        # first blocks-1 nets each pair a block with an earlier one.
        touched = set()
        for net in design.nets[:49]:
            touched.add(net.source)
            touched.add(net.destination)
        assert len(touched) == 50

    def test_domain_crossings_subset(self):
        design = generate_design(blocks=30, domains=3, seed=2)
        modules = design.module_map()
        for net in design.domain_crossings():
            src = modules[net.source].domain.name
            dst = modules[net.destination].domain.name
            assert src != dst

    def test_single_domain_rejected(self):
        with pytest.raises(AnalysisError):
            generate_design(blocks=20, domains=1, seed=0)

    def test_dvs_fraction_yields_scheduled_domains(self):
        design = generate_design(blocks=20, domains=4, seed=0,
                                 dvs_fraction=0.5)
        swinging = [d for d in design.domains().values()
                    if d.schedule.min_voltage != d.schedule.max_voltage]
        assert len(swinging) == 2

    def test_placed_soc_covers_domain_crossings(self):
        design = generate_design(blocks=16, domains=4, seed=5)
        positions = {m.name: (10.0 * i, 5.0 * i, m.width, m.height)
                     for i, m in enumerate(design.modules)}
        soc = design.placed_soc(positions)
        assert len(soc.crossings) == len(design.domain_crossings())


class TestValidation:
    def test_duplicate_block_names_rejected(self):
        design = generate_design(blocks=4, domains=2, seed=0)
        with pytest.raises(AnalysisError):
            SocDesign(design.name,
                      (design.modules[0],) + design.modules[1:3]
                      + (design.modules[0],), design.nets[:1])

    def test_unknown_net_endpoint_rejected(self):
        design = generate_design(blocks=4, domains=2, seed=0)
        bad = design.nets[0].__class__("b0000", "nowhere", 1)
        with pytest.raises(AnalysisError):
            SocDesign(design.name, design.modules, (bad,))


class TestVerilogBridge:
    def bridge(self):
        modules = parse_verilog(VERILOG)
        return design_from_verilog(
            modules["soc_top"],
            {"u_core": "lo", "u_dsp": "hi", "u_io": "lo"},
            {"lo": 0.8, "hi": 1.2})

    def test_blocks_from_instances(self):
        design = self.bridge()
        assert sorted(m.name for m in design.modules) == \
            ["u_core", "u_dsp", "u_io"]

    def test_arcs_follow_nets(self):
        design = self.bridge()
        arcs = {(n.source, n.destination) for n in design.nets}
        assert ("u_core", "u_dsp") in arcs
        assert ("u_dsp", "u_io") in arcs

    def test_all_arcs_cross_domains_here(self):
        design = self.bridge()
        assert len(design.domain_crossings()) == len(design.nets)

    def test_unassigned_instance_rejected(self):
        modules = parse_verilog(VERILOG)
        with pytest.raises(AnalysisError):
            design_from_verilog(modules["soc_top"],
                                {"u_core": "lo"}, {"lo": 0.8})

    def test_unknown_domain_rejected(self):
        modules = parse_verilog(VERILOG)
        with pytest.raises(AnalysisError):
            design_from_verilog(
                modules["soc_top"],
                {"u_core": "lo", "u_dsp": "ghost", "u_io": "lo"},
                {"lo": 0.8})
