"""Golden floorplan benchmark: a pinned 12-block design.

Every number here is pinned bitwise via ``float.hex`` — the annealer
is seed-deterministic and the synthetic timing tables are exact under
bilinear interpolation, so any diff is a real behavioural change, not
noise. The leakage table is embedded in the golden file (copied from
LEADERBOARD.json's ptm90/tt entries at pin time) so regenerating the
leaderboard does not silently move the benchmark.

Also carries the paper's headline claim at floorplan scale: on the
pinned benchmark the SS-TVS assignment beats both dual-supply CVS
(which pays routed source-domain supply rails, Figures 2-3) and the
combined VS (which pays control wires and a much worse leakage state)
on the total objective.
"""

import json
from pathlib import Path

import pytest

from repro.floorplan import (
    anneal_floorplan, assign_shifters, build_crossing_netlist,
    build_timing_library, generate_design, signoff_floorplan,
)

pytestmark = [pytest.mark.floorplan, pytest.mark.golden]

GOLDEN_PATH = (Path(__file__).parent / "goldens"
               / "floorplan_benchmark.json")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        data = json.load(handle)
    assert data["schema"] == "repro-floorplan-golden-v1"
    return data


@pytest.fixture(scope="module")
def pinned_runs(golden):
    """Re-run the pinned configuration; strategy -> (result, report)."""
    config = golden["config"]
    table = {cell: float.fromhex(value)
             for cell, value in golden["leakage_table"].items()}
    design = generate_design(
        blocks=config["blocks"], domains=config["domains"],
        seed=config["seed"], crossing_factor=config["crossing_factor"])
    out = {}
    for strategy in golden["strategies"]:
        assignment = assign_shifters(design, strategy,
                                     leakage_table=table,
                                     characterize_leakage=False)
        results = [anneal_floorplan(design, assignment, seed=seed,
                                    moves=config["moves"])
                   for seed in range(config["restarts"])]
        best = min(results, key=lambda r: r.cost)
        netlist, paths = build_crossing_netlist(design, assignment,
                                                best.positions)
        library = build_timing_library(design, assignment)
        report = signoff_floorplan(netlist, paths, library,
                                   config["required"])
        out[strategy] = (assignment, best, report)
    return design, out


def test_crossing_count_pinned(golden, pinned_runs):
    design, _ = pinned_runs
    assert len(design.domain_crossings()) == golden["crossings"]


@pytest.mark.parametrize("strategy", ("sstvs", "combined", "cvs"))
def test_cost_breakdown_pinned_bitwise(golden, pinned_runs, strategy):
    pin = golden["strategies"][strategy]
    _, best, _ = pinned_runs[1][strategy]
    b = best.breakdown
    assert best.seed == pin["best_seed"]
    assert best.cost.hex() == pin["cost_hex"]
    assert b.area.hex() == pin["area_hex"]
    assert b.hpwl.hex() == pin["hpwl_hex"]
    assert b.rail_length.hex() == pin["rail_length_hex"]
    assert b.control_length.hex() == pin["control_length_hex"]
    assert b.shifter_area.hex() == pin["shifter_area_hex"]
    assert b.leakage.hex() == pin["leakage_hex"]


@pytest.mark.parametrize("strategy", ("sstvs", "combined", "cvs"))
def test_placement_pinned_bitwise(golden, pinned_runs, strategy):
    pin = golden["strategies"][strategy]
    _, best, _ = pinned_runs[1][strategy]
    assert best.digest() == pin["placement_digest"]
    positions = {name: [v.hex() for v in pos]
                 for name, pos in best.positions.items()}
    assert positions == pin["positions_hex"]


@pytest.mark.parametrize("strategy", ("sstvs", "combined", "cvs"))
def test_shifter_assignment_pinned(golden, pinned_runs, strategy):
    pin = golden["strategies"][strategy]
    assignment, _, _ = pinned_runs[1][strategy]
    assert assignment.cell == pin["cell"]
    assert assignment.shifter_count == pin["shifter_count"]


@pytest.mark.parametrize("strategy", ("sstvs", "combined", "cvs"))
def test_signoff_pinned_bitwise(golden, pinned_runs, strategy):
    pin = golden["strategies"][strategy]
    _, _, report = pinned_runs[1][strategy]
    assert report.ok is pin["signoff_ok"]
    assert report.worst_slack.hex() == pin["worst_slack_hex"]


def test_sstvs_beats_cvs_on_total_objective(pinned_runs):
    """Figures 2-3 at floorplan scale: the extra source-domain supply
    rails CVS must route cost more than SS-TVS's leakage premium."""
    _, results = pinned_runs
    sstvs_cost = results["sstvs"][1].cost
    cvs_cost = results["cvs"][1].cost
    assert sstvs_cost < cvs_cost
    # And the deficit is attributable to rails: CVS routes them,
    # SS-TVS does not.
    assert results["cvs"][1].breakdown.rail_length > 0
    assert results["sstvs"][1].breakdown.rail_length == 0.0


def test_sstvs_beats_combined_on_total_objective(pinned_runs):
    """The combined VS pays both control wiring and a far worse
    worst-state leakage (its low conversion state burns ~uA)."""
    _, results = pinned_runs
    assert results["sstvs"][1].cost < results["combined"][1].cost
    assert results["combined"][1].breakdown.control_length > 0
    assert results["sstvs"][1].breakdown.control_length == 0.0
