"""Floorplanning under the unified experiment engine.

The SoC-scale test here is the ISSUE's acceptance gate: a 1000+-block
synthetic floorplan completes end-to-end (generate, assign, anneal,
STA sign-off) under the engine, and the result is bitwise-reproducible
regardless of worker count, resume state, or cache temperature.
"""

import pytest

from repro.errors import AnalysisError
from repro.floorplan import (
    FLOORPLAN_STRATEGIES, best_by_strategy, floorplan_spec,
    run_floorplan_campaign,
)
from repro.runtime.cache import SolveCache
from repro.runtime.experiment import ArtifactStore, ResultSet

pytestmark = [pytest.mark.floorplan, pytest.mark.experiment]


def _payloads(result) -> dict:
    return {row.index: row.value for row in result.rows if row.ok}


class TestSpec:
    def test_points_span_strategies_and_restarts(self):
        spec = floorplan_spec(blocks=8, domains=3, restarts=2, seed=5)
        indexes = [p.index for p in spec.points]
        assert len(indexes) == len(FLOORPLAN_STRATEGIES) * 2
        assert "sstvs/s5" in indexes and "sstvs/s6" in indexes

    def test_unknown_strategy_rejected(self):
        with pytest.raises(AnalysisError):
            floorplan_spec(strategies=("osmosis",))

    def test_unknown_timing_mode_rejected(self):
        with pytest.raises(AnalysisError):
            floorplan_spec(timing="crystal-ball")

    def test_leakage_table_travels_canonically(self):
        spec = floorplan_spec(blocks=8, domains=3,
                              leakage={"sstvs": 2e-9, "cvs": 1e-9})
        leakage = spec.points[0].params[7]
        assert leakage == ("table", (("cvs", 1e-9), ("sstvs", 2e-9)))

    def test_metadata_records_the_configuration(self):
        spec = floorplan_spec(blocks=8, domains=3, node="ptm90",
                              restarts=2)
        assert spec.metadata["pdk_node"] == "ptm90"
        assert spec.metadata["blocks"] == 8
        assert spec.metadata["restarts"] == 2


class TestDeterminismAcrossExecution:
    def test_worker_count_does_not_change_the_bits(self):
        serial = run_floorplan_campaign(floorplan_spec(
            blocks=24, domains=4, moves=150, workers=1))
        pooled = run_floorplan_campaign(floorplan_spec(
            blocks=24, domains=4, moves=150, workers=2))
        assert _payloads(serial) == _payloads(pooled)

    def test_rerun_is_bitwise_identical(self):
        spec = lambda: floorplan_spec(blocks=16, domains=3, moves=150)
        a = run_floorplan_campaign(spec())
        b = run_floorplan_campaign(spec())
        assert _payloads(a) == _payloads(b)

    def test_resume_completes_without_recomputing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = floorplan_spec(blocks=16, domains=3, moves=150,
                              strategies=("sstvs", "cvs"))
        full = run_floorplan_campaign(spec, store=store)
        # Drop the cvs rows and resume: only they may be recomputed,
        # and the final payloads must match the uninterrupted run.
        partial = ResultSet(
            name=full.name, codec=full.codec,
            rows=[r for r in full.rows
                  if r.value["strategy"] == "sstvs"])
        resumed = run_floorplan_campaign(
            floorplan_spec(blocks=16, domains=3, moves=150,
                           strategies=("sstvs", "cvs")),
            resume=partial)
        assert _payloads(resumed) == _payloads(full)

    def test_cache_serves_warm_points_bitwise(self, tmp_path):
        spec = lambda: floorplan_spec(blocks=12, domains=3, moves=120,
                                      strategies=("sstvs",))
        cold_cache = SolveCache(tmp_path / "cache")
        cold = run_floorplan_campaign(spec(), cache=cold_cache)
        assert cold_cache.stats.stores > 0
        warm_cache = SolveCache(tmp_path / "cache")
        warm = run_floorplan_campaign(spec(), cache=warm_cache)
        assert warm_cache.stats.hits == len(spec().points)
        assert _payloads(warm) == _payloads(cold)


class TestSignoffGating:
    def test_require_signoff_quarantines_violations(self):
        # An absurd 1 ps budget cannot be met; with require_signoff
        # the point fails (quarantined), without it the violation is
        # reported in the payload.
        reported = run_floorplan_campaign(floorplan_spec(
            blocks=8, domains=3, moves=100, strategies=("sstvs",),
            required=1e-12))
        row = reported.rows[0]
        assert row.ok
        assert not row.value["signoff_ok"]
        assert row.value["violations"] > 0

        gated = run_floorplan_campaign(floorplan_spec(
            blocks=8, domains=3, moves=100, strategies=("sstvs",),
            required=1e-12, require_signoff=True))
        failures = gated.sample_failures()
        assert len(failures) == 1
        assert "sign-off" in failures[0].error


class TestBestByStrategy:
    def test_picks_the_lowest_cost_restart(self):
        result = run_floorplan_campaign(floorplan_spec(
            blocks=10, domains=3, moves=120, restarts=3,
            strategies=("sstvs",)))
        best = best_by_strategy(result)
        costs = [row.value["cost"] for row in result.rows if row.ok]
        assert best["sstvs"]["cost"] == min(costs)


@pytest.mark.integration
class TestSocScale:
    def test_thousand_block_floorplan_end_to_end(self, tmp_path):
        """ISSUE acceptance: 1000+ blocks through the engine with a
        persisted manifest and a stable placement digest."""
        store = ArtifactStore(tmp_path)
        spec = floorplan_spec(blocks=1024, domains=6, moves=400,
                              strategies=("sstvs",), design_seed=1)
        result = run_floorplan_campaign(spec, store=store)
        assert result.counts["err"] == 0
        payload = result.rows[0].value
        assert payload["blocks"] == 1024
        assert payload["crossings"] > 1000
        assert payload["signoff_ok"] in (True, False)
        assert payload["worst_slack"] == pytest.approx(
            payload["worst_slack"])  # a real float came back

        # The stored manifest reloads with the same payloads.
        reloaded = ArtifactStore(tmp_path).load(result.run_id)
        assert _payloads(reloaded) == _payloads(result)

        # And the digest is reproducible from scratch.
        again = run_floorplan_campaign(
            floorplan_spec(blocks=1024, domains=6, moves=400,
                           strategies=("sstvs",), design_seed=1))
        assert again.rows[0].value["placement_digest"] == \
            payload["placement_digest"]
