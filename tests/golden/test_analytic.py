"""Analytic golden battery: solver output pinned against closed forms.

Unlike the calibrated goldens in ``test_golden_metrics.py`` (which pin
*our own* previous output), every reference here is an exact analytic
solution — RC/RL exponentials, the Lambert-W diode drop, linear
superposition — so a failure means the solver is objectively wrong,
not merely different.

Error bounds, measured on the seed solver and pinned with margin:

======================  ========  ==========  ==========
test                    method    measured    bound
======================  ========  ==========  ==========
RC charge / RL step     be        6.4e-3 V    1.0e-2 V
RC charge / RL step     trap      5.1e-5 V    5.0e-4 V
RC discharge (uic)      be        6.1e-3 V    1.0e-2 V
RC discharge (uic)      trap      5.0e-4 V    1.5e-3 V
diode vs Lambert-W      newton    <1e-8  V    1.0e-6 V
divider/superposition   direct    ~1e-9  V    1.0e-8 V
======================  ========  ==========  ==========

The be/trap split is the integration order showing through: backward
Euler is O(h), trapezoidal O(h^2), at the same LTE-controlled step
sequence (``dv_max = 0.05`` default, ``h_max = t_stop / 100``). The
negative controls at the bottom loosen the LTE control and the Newton
tolerances and assert the bounds are then *violated* — proof the
battery actually exercises the accuracy machinery it claims to pin.
"""

import numpy as np
import pytest
from scipy.special import lambertw

from repro.spice import Circuit, OperatingPoint, Transient
from repro.spice.devices import (
    Capacitor, Diode, Inductor, Pulse, Resistor, VoltageSource,
)
from repro.spice.newton import NewtonOptions
from repro.spice.transient import TransientOptions

pytestmark = pytest.mark.golden

#: Both fixed-method integrators, forced via TransientOptions.method.
INTEGRATORS = ("be", "trap")

#: Documented max-|error| bounds [V] — see the module docstring table.
STEP_BOUND = {"be": 1.0e-2, "trap": 5.0e-4}
DISCHARGE_BOUND = {"be": 1.0e-2, "trap": 1.5e-3}
DIODE_BOUND = 1.0e-6
#: Linear DC is exact up to the Newton gmin floor: 1e-12 S stamped at
#: every node perturbs kOhm-scale networks by a few nV.
LINEAR_BOUND = 1.0e-8

TAU = 1e-9       # RC = L/R time constant [s]
T_EDGE = 1e-9    # stimulus edge start [s]
T_RISE = 1e-12   # stimulus ramp [s]; centred analytic reference below
T_STOP = 6e-9

BOLTZMANN = 1.380649e-23
ELEMENTARY_CHARGE = 1.602176634e-19


def _step_source():
    return VoltageSource("v", "in", "0", shape=Pulse(
        0, 1, delay=T_EDGE, rise=T_RISE, fall=T_RISE, width=50e-9,
        period=100e-9))


def _max_error_after_edge(wave, exact_fn):
    """Max |simulated - exact| for samples past the stimulus ramp.

    The analytic forms below treat the 1 ps ramp as a step at its
    midpoint, which cancels the first-order ramp error; the remaining
    mismatch decays within a few ramp times, so comparison starts
    10 ps after the ramp ends.
    """
    mask = wave.times >= T_EDGE + T_RISE + 10e-12
    t = wave.times[mask]
    exact = exact_fn(t - T_EDGE - T_RISE / 2)
    return float(np.max(np.abs(wave.values[mask] - exact)))


def _rc_charge_error(method, dv_max=0.05, h_max=None):
    """1 V step into R=1k, C=1p: v_C(t) = 1 - exp(-t / tau)."""
    ckt = Circuit("rc_charge")
    ckt.add(_step_source())
    ckt.add(Resistor("r", "in", "out", 1e3))
    ckt.add(Capacitor("c", "out", "0", TAU / 1e3))
    opts = TransientOptions(method=method, dv_max=dv_max, h_max=h_max)
    res = Transient(ckt, T_STOP, opts).run()
    return _max_error_after_edge(
        res.wave("out"), lambda t: 1.0 - np.exp(-t / TAU))


def _rc_discharge_error(method):
    """Source-free R || C released from v(0) = 1 V: v(t) = exp(-t/tau).

    The initial state is supplied directly (SPICE ``uic`` style) via
    ``run(x0=...)``, bypassing the DC seed that would otherwise relax
    the node to 0 V at t = 0.
    """
    ckt = Circuit("rc_discharge")
    ckt.add(Resistor("r", "out", "0", 1e3))
    ckt.add(Capacitor("c", "out", "0", TAU / 1e3, ic=1.0))
    ckt.finalize()
    x0 = np.zeros(ckt.system_size())
    x0[ckt.node_index("out")] = 1.0
    res = Transient(ckt, 5e-9, TransientOptions(method=method)).run(x0=x0)
    w = res.wave("out")
    exact = np.exp(-w.times / TAU)
    return float(np.max(np.abs(w.values - exact)))


def _rl_step_error(method):
    """1 V step into R=1k in series with L=1u: v_L(t) = exp(-t/tau)."""
    ckt = Circuit("rl_step")
    ckt.add(_step_source())
    ckt.add(Resistor("r", "in", "out", 1e3))
    ckt.add(Inductor("l", "out", "0", 1e3 * TAU))
    res = Transient(ckt, T_STOP, TransientOptions(method=method)).run()
    return _max_error_after_edge(
        res.wave("out"), lambda t: np.exp(-t / TAU))


class TestTransientExponentials:
    @pytest.mark.parametrize("method", INTEGRATORS)
    def test_rc_charge(self, method):
        assert _rc_charge_error(method) < STEP_BOUND[method]

    @pytest.mark.parametrize("method", INTEGRATORS)
    def test_rc_discharge(self, method):
        assert _rc_discharge_error(method) < DISCHARGE_BOUND[method]

    @pytest.mark.parametrize("method", INTEGRATORS)
    def test_rl_step(self, method):
        assert _rl_step_error(method) < STEP_BOUND[method]

    def test_trap_beats_be(self):
        """Order separation: trapezoidal error is at least 10x smaller
        than backward Euler on the same circuit and step control."""
        assert _rc_charge_error("trap") < _rc_charge_error("be") / 10.0
        assert _rl_step_error("trap") < _rl_step_error("be") / 10.0


def _diode_drop_exact(v_src, r, i_s=1e-14, n=1.0, temp=300.15):
    """Closed-form diode voltage in a V-R-diode loop via Lambert W.

    Solving V = R Is (exp(v/a) - 1) + v with a = n kT/q gives
    v = V + R Is - a W((R Is / a) exp((V + R Is) / a)).
    """
    a = n * BOLTZMANN * temp / ELEMENTARY_CHARGE
    w = lambertw((r * i_s / a) * np.exp((v_src + r * i_s) / a))
    return float(v_src + r * i_s - a * w.real)


def _diode_drop_solved(v_src, r, newton=None):
    ckt = Circuit("diode_r")
    ckt.add(VoltageSource("v", "in", "0", dc=v_src))
    ckt.add(Resistor("r", "in", "d", r))
    ckt.add(Diode("d1", "d", "0"))
    return OperatingPoint(ckt, options=newton).run()["d"]


class TestDiodeLambertW:
    @pytest.mark.parametrize("v_src,r", [
        (0.5, 1e3), (0.8, 1e3), (1.2, 1e3), (1.0, 100.0), (2.0, 10e3),
    ])
    def test_dc_drop_matches_lambert_w(self, v_src, r):
        got = _diode_drop_solved(v_src, r)
        exact = _diode_drop_exact(v_src, r)
        assert abs(got - exact) < DIODE_BOUND


class TestLinearDC:
    def test_voltage_divider_exact(self):
        """Three-resistor divider against the hand-computed node set."""
        ckt = Circuit("divider")
        ckt.add(VoltageSource("v", "top", "0", dc=1.2))
        ckt.add(Resistor("r1", "top", "a", 1e3))
        ckt.add(Resistor("r2", "a", "b", 2e3))
        ckt.add(Resistor("r3", "b", "0", 3e3))
        op = OperatingPoint(ckt).run()
        assert abs(op["a"] - 1.2 * 5.0 / 6.0) < LINEAR_BOUND
        assert abs(op["b"] - 1.2 * 3.0 / 6.0) < LINEAR_BOUND

    def test_two_source_superposition(self):
        """Bridge node of a two-source network vs the superposition sum
        computed analytically (parallel-resistance formula)."""
        def build(v1, v2):
            ckt = Circuit("two_source")
            ckt.add(VoltageSource("va", "l", "0", dc=v1))
            ckt.add(VoltageSource("vb", "r", "0", dc=v2))
            ckt.add(Resistor("r1", "l", "mid", 1e3))
            ckt.add(Resistor("r2", "r", "mid", 2e3))
            ckt.add(Resistor("r3", "mid", "0", 4e3))
            return OperatingPoint(ckt).run()["mid"]

        # Millman: v_mid = (v1/R1 + v2/R2) / (1/R1 + 1/R2 + 1/R3).
        g1, g2, g3 = 1 / 1e3, 1 / 2e3, 1 / 4e3
        v1, v2 = 0.8, 1.2
        exact = (v1 * g1 + v2 * g2) / (g1 + g2 + g3)
        assert abs(build(v1, v2) - exact) < LINEAR_BOUND
        # And the solved superposition identity itself.
        assert abs(build(v1, v2)
                   - build(v1, 0.0) - build(0.0, v2)) < LINEAR_BOUND


class TestNegativeControls:
    """Deliberately degrade the solver; the bounds must then FAIL.

    These prove the battery is sensitive to the machinery it pins: if
    loosening LTE control or Newton tolerances did not break the
    bounds, the bounds would be too slack to catch a real regression.
    """

    def test_loose_lte_control_violates_step_bounds(self):
        # dv_max 10x looser + 1.5 ns steps: measured 5.0e-2 (be) and
        # 4.7e-3 (trap) — both well past their bounds.
        assert _rc_charge_error("be", dv_max=0.5,
                                h_max=1.5e-9) > STEP_BOUND["be"]
        assert _rc_charge_error("trap", dv_max=0.5,
                                h_max=1.5e-9) > STEP_BOUND["trap"]

    def test_loose_newton_violates_diode_bound(self):
        # Tolerances loosened to the point Newton "converges" after a
        # single damped iterate: measured error 0.37 V vs 1e-6 bound.
        loose = NewtonOptions(max_iterations=3, abstol_v=0.5, abstol_i=1.0,
                              reltol=0.9, max_step_v=10.0)
        got = _diode_drop_solved(1.0, 1e3, newton=loose)
        assert abs(got - _diode_drop_exact(1.0, 1e3)) > DIODE_BOUND
