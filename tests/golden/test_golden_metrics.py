"""Golden regression tests: headline numbers pinned within tolerance.

These protect the calibrated result set (EXPERIMENTS.md) from silent
drift: a model or sizing change that moves a headline metric by more
than the tolerance should be a conscious decision, accompanied by an
update here and in EXPERIMENTS.md.

Tolerances are deliberately loose (25 % for delays/powers, 40 % for
leakages) — they catch regressions, not noise.
"""

import pytest

from repro.core import LevelShifter

#: (kind, vddi, vddo) -> expected metrics at the time of calibration.
GOLDEN = {
    ("sstvs", 0.8, 1.2): dict(delay_rise=351e-12, delay_fall=158e-12,
                              power_rise=34e-6, power_fall=27e-6,
                              leakage_high=1.5e-9, leakage_low=5.7e-9),
    ("sstvs", 1.2, 0.8): dict(delay_rise=208e-12, delay_fall=27e-12,
                              power_rise=13e-6, power_fall=0.8e-6,
                              leakage_high=1.0e-9, leakage_low=4.5e-9),
    ("combined", 0.8, 1.2): dict(delay_rise=278e-12, delay_fall=161e-12,
                                 leakage_high=4.0e-9,
                                 leakage_low=2.97e-6),
    ("combined", 1.2, 0.8): dict(delay_rise=144e-12, delay_fall=75e-12,
                                 leakage_high=2.6e-9,
                                 leakage_low=1.1e-9),
}

TOLERANCE = {"delay_rise": 0.25, "delay_fall": 0.25,
             "power_rise": 0.25, "power_fall": 0.40,
             "leakage_high": 0.40, "leakage_low": 0.40}


@pytest.mark.parametrize("key", sorted(GOLDEN), ids=lambda k: f"{k[0]}_{k[1]}to{k[2]}")
def test_golden_metrics(key):
    kind, vddi, vddo = key
    metrics = LevelShifter(kind).characterize(vddi, vddo)
    assert metrics.functional
    for name, expected in GOLDEN[key].items():
        measured = getattr(metrics, name)
        tolerance = TOLERANCE[name]
        assert measured == pytest.approx(expected, rel=tolerance), (
            f"{kind} {vddi}->{vddo} {name}: measured "
            f"{measured:.3e}, golden {expected:.3e} "
            f"(±{tolerance:.0%}) — if intentional, update this file "
            f"and EXPERIMENTS.md")


def test_golden_area():
    from repro.cells import add_sstvs
    from repro.layout import estimate_cell_area
    from repro.pdk import Pdk
    est = estimate_cell_area(add_sstvs, Pdk())
    assert est.total_area_um2 == pytest.approx(4.56, rel=0.10)


def test_golden_functional_grid():
    from repro.analysis import SweepGrid, validate_functionality
    report = validate_functionality("sstvs", SweepGrid.with_step(0.3))
    assert report.all_passed, report.summary()
