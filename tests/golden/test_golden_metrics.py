"""Golden regression tests: headline numbers pinned within tolerance.

These protect the calibrated result set (EXPERIMENTS.md) from silent
drift: a model or sizing change that moves a headline metric by more
than the tolerance should be a conscious decision, accompanied by a
regeneration of ``goldens.json`` (see ``regen.py``) and an update to
EXPERIMENTS.md.

Tolerances are deliberately loose (25 % for delays/powers, 40 % for
leakages) — they catch regressions, not noise. Expected values and
tolerances both live in ``goldens.json`` so the regeneration script
and this test can never disagree about what is pinned.
"""

import json
from pathlib import Path

import pytest

from repro.core import LevelShifter

pytestmark = pytest.mark.golden

GOLDENS_PATH = Path(__file__).resolve().parent / "goldens.json"
DOCUMENT = json.loads(GOLDENS_PATH.read_text())

#: (kind, vddi, vddo) -> expected metrics at the time of calibration.
GOLDEN = {(e["kind"], e["vddi"], e["vddo"]): e["expected"]
          for e in DOCUMENT["metrics"]}

TOLERANCE = DOCUMENT["tolerance"]


def test_goldens_document_shape():
    assert DOCUMENT["schema"] == "repro-goldens-v1"
    assert len(GOLDEN) == 4
    for expected in GOLDEN.values():
        assert set(expected) <= set(TOLERANCE)


@pytest.mark.parametrize("key", sorted(GOLDEN),
                         ids=lambda k: f"{k[0]}_{k[1]}to{k[2]}")
def test_golden_metrics(key):
    kind, vddi, vddo = key
    metrics = LevelShifter(kind).characterize(vddi, vddo)
    assert metrics.functional
    for name, expected in GOLDEN[key].items():
        measured = getattr(metrics, name)
        tolerance = TOLERANCE[name]
        assert measured == pytest.approx(expected, rel=tolerance), (
            f"{kind} {vddi}->{vddo} {name}: measured "
            f"{measured:.3e}, golden {expected:.3e} "
            f"(±{tolerance:.0%}) — if intentional, regenerate "
            f"goldens.json with regen.py and update EXPERIMENTS.md")


def test_golden_area():
    from repro.cells import add_sstvs
    from repro.layout import estimate_cell_area
    from repro.pdk import Pdk
    est = estimate_cell_area(add_sstvs, Pdk())
    area = DOCUMENT["area"]
    assert est.total_area_um2 == pytest.approx(
        area["sstvs_total_um2"], rel=area["rel_tolerance"])


def test_golden_functional_grid():
    from repro.analysis import SweepGrid, validate_functionality
    report = validate_functionality("sstvs", SweepGrid.with_step(0.3))
    assert report.all_passed, report.summary()
