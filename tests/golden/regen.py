"""Regenerate ``tests/golden/goldens.json`` from the current solver.

Run this ONLY after a *deliberate* model, sizing, or solver change that
is supposed to move the headline numbers — the whole point of the
golden battery is that silent drift fails loudly. Workflow:

    PYTHONPATH=src python tests/golden/regen.py --dry-run   # review drift
    PYTHONPATH=src python tests/golden/regen.py             # rewrite file
    # then: update EXPERIMENTS.md and mention the recalibration in the PR

The script re-characterizes every (kind, vddi, vddo) combination listed
in the existing file, keeps exactly the metric subset each entry pins
(``combined`` entries deliberately omit the power metrics), re-measures
the SS-TVS cell area, and rewrites the JSON with values rounded to
three significant figures — the same precision the tolerances are
calibrated against. Tolerances themselves are never rewritten; widening
a tolerance is a reviewed edit, not a regeneration.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

GOLDENS_PATH = Path(__file__).resolve().parent / "goldens.json"


def _round_sig(value: float, digits: int = 3) -> float:
    return float(f"{value:.{digits - 1}e}")


def regenerate(document: dict) -> dict:
    """Fresh golden document with re-measured expected values."""
    from repro.cells import add_sstvs
    from repro.core import LevelShifter
    from repro.layout import estimate_cell_area
    from repro.pdk import Pdk

    fresh = json.loads(json.dumps(document))  # deep copy
    for entry in fresh["metrics"]:
        metrics = LevelShifter(entry["kind"]).characterize(
            entry["vddi"], entry["vddo"])
        if not metrics.functional:
            raise SystemExit(
                f"refusing to pin a non-functional run: "
                f"{entry['kind']} {entry['vddi']}->{entry['vddo']}")
        entry["expected"] = {
            name: _round_sig(getattr(metrics, name))
            for name in entry["expected"]}
    est = estimate_cell_area(add_sstvs, Pdk())
    fresh["area"]["sstvs_total_um2"] = _round_sig(est.total_area_um2)
    return fresh


def _drift_report(old: dict, new: dict) -> list[str]:
    lines = []
    for old_e, new_e in zip(old["metrics"], new["metrics"]):
        tag = f"{old_e['kind']} {old_e['vddi']}->{old_e['vddo']}"
        for name, was in old_e["expected"].items():
            now = new_e["expected"][name]
            if was == now:
                continue
            rel = (now - was) / was if was else float("inf")
            lines.append(f"  {tag:<22s} {name:<14s} "
                         f"{was:.3e} -> {now:.3e}  ({rel:+.1%})")
    was_a = old["area"]["sstvs_total_um2"]
    now_a = new["area"]["sstvs_total_um2"]
    if was_a != now_a:
        lines.append(f"  area sstvs_total_um2   {was_a} -> {now_a}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dry-run", action="store_true",
                        help="print the drift, do not rewrite the file")
    args = parser.parse_args(argv)

    old = json.loads(GOLDENS_PATH.read_text())
    new = regenerate(old)
    drift = _drift_report(old, new)
    if not drift:
        print("goldens unchanged — nothing to regenerate")
        return 0
    print("golden drift:")
    print("\n".join(drift))
    if args.dry_run:
        print("dry run — file not touched")
        return 0
    GOLDENS_PATH.write_text(json.dumps(new, indent=2) + "\n")
    print(f"rewrote {GOLDENS_PATH} — update EXPERIMENTS.md to match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
