"""Tests for the structural Verilog subset and its engine bridges."""

import pytest

from repro.errors import NetlistError
from repro.logicsim import SupplyState
from repro.verilog import (
    parse_verilog, to_gate_netlist, to_logic_simulator, write_verilog,
)

SIMPLE = """
// two-inverter buffer
module buf2 (a, y);
  input a;
  output y;
  wire n1;

  INVX1 u1 (.A(a), .Y(n1));
  INVX1 u2 (.A(n1), .Y(y));
endmodule
"""


class TestParsing:
    def test_module_structure(self):
        modules = parse_verilog(SIMPLE)
        assert set(modules) == {"buf2"}
        module = modules["buf2"]
        assert module.ports == ["a", "y"]
        assert module.inputs == ["a"]
        assert module.outputs == ["y"]
        assert module.wires == ["n1"]
        assert len(module.instances) == 2

    def test_connections(self):
        module = parse_verilog(SIMPLE)["buf2"]
        u1 = module.instances[0]
        assert u1.cell == "INVX1"
        assert u1.connections == {"A": "a", "Y": "n1"}

    def test_block_comments_stripped(self):
        text = SIMPLE.replace("// two-inverter buffer",
                              "/* block\ncomment */")
        assert "buf2" in parse_verilog(text)

    def test_multiple_modules(self):
        text = SIMPLE + SIMPLE.replace("buf2", "buf2_copy")
        modules = parse_verilog(text)
        assert set(modules) == {"buf2", "buf2_copy"}

    def test_multi_net_declaration(self):
        text = """
module m (a, y);
  input a;
  output y;
  wire n1, n2, n3;
  INVX1 u1 (.A(a), .Y(n1));
  INVX1 u2 (.A(n1), .Y(n2));
  INVX1 u3 (.A(n2), .Y(n3));
  INVX1 u4 (.A(n3), .Y(y));
endmodule
"""
        module = parse_verilog(text)["m"]
        assert module.wires == ["n1", "n2", "n3"]

    def test_undeclared_net_rejected(self):
        text = """
module m (a, y);
  input a;
  output y;
  INVX1 u1 (.A(a), .Y(ghost));
endmodule
"""
        with pytest.raises(NetlistError, match="not declared"):
            parse_verilog(text)

    def test_duplicate_instances_rejected(self):
        text = """
module m (a, y);
  input a;
  output y;
  INVX1 u1 (.A(a), .Y(y));
  INVX1 u1 (.A(a), .Y(y));
endmodule
"""
        with pytest.raises(NetlistError, match="duplicate"):
            parse_verilog(text)

    def test_positional_ports_rejected(self):
        text = """
module m (a, y);
  input a;
  output y;
  INVX1 u1 (a, y);
endmodule
"""
        with pytest.raises(NetlistError, match="named port"):
            parse_verilog(text)

    def test_vectors_rejected(self):
        text = """
module m (a, y);
  input a;
  output y;
  wire bus[3:0];
  INVX1 u1 (.A(a), .Y(y));
endmodule
"""
        with pytest.raises(NetlistError):
            parse_verilog(text)

    def test_empty_source_rejected(self):
        with pytest.raises(NetlistError, match="no module"):
            parse_verilog("wire x;")


class TestWriter:
    def test_roundtrip(self):
        module = parse_verilog(SIMPLE)["buf2"]
        text = write_verilog(module)
        again = parse_verilog(text)["buf2"]
        assert again.inputs == module.inputs
        assert len(again.instances) == len(module.instances)
        assert again.instances[0].connections == \
            module.instances[0].connections


class TestStaBridge:
    def test_gate_netlist_structure(self):
        module = parse_verilog(SIMPLE)["buf2"]
        netlist = to_gate_netlist(module)
        assert netlist.primary_inputs == ["a"]
        assert netlist.primary_outputs == ["y"]
        order = [i.name for i in netlist.topological_instances()]
        assert order == ["u1", "u2"]

    def test_missing_pin_rejected(self):
        text = """
module m (a, y);
  input a;
  output y;
  INVX1 u1 (.A(a), .Z(y));
endmodule
"""
        module = parse_verilog(text)["m"]
        with pytest.raises(NetlistError, match=".Y"):
            to_gate_netlist(module)


class TestLogicBridge:
    CROSSING = """
module xing (d, q);
  input d;
  output q;
  wire n1, n2;
  INVX1 drv (.A(d), .Y(n1));
  SSTVS ls$cpu$dsp (.A(n1), .Y(n2));
  BUFX1 rx (.A(n2), .Y(q));
endmodule
"""

    def _supplies(self):
        supplies = SupplyState()
        supplies.set("cpu", 1.2)
        supplies.set("dsp", 1.0)
        return supplies

    def test_simulates(self):
        module = parse_verilog(self.CROSSING)["xing"]
        sim = to_logic_simulator(module, self._supplies())
        sim.set_input("d", "1")
        sim.run(1e-9)
        # Two inversions (driver + inverting shifter) + buffer.
        assert sim.value("q") == "1"

    def test_shifter_name_encodes_domains(self):
        text = self.CROSSING.replace("ls$cpu$dsp", "ls_no_domains")
        module = parse_verilog(text)["xing"]
        with pytest.raises(NetlistError, match="domain"):
            to_logic_simulator(module, self._supplies())

    def test_unknown_cell_rejected(self):
        text = self.CROSSING.replace("BUFX1", "FLUXCAP")
        module = parse_verilog(text)["xing"]
        with pytest.raises(NetlistError, match="behavioral"):
            to_logic_simulator(module, self._supplies())

    def test_dvs_corruption_through_verilog(self):
        text = self.CROSSING.replace("SSTVS", "LSINV")
        module = parse_verilog(text)["xing"]
        sim = to_logic_simulator(module, self._supplies())
        sim.set_input("d", "1")
        sim.run(1e-9)
        sim.schedule_supply(2e-9, "cpu", 0.6)
        sim.run(3e-9)
        assert sim.value("q") == "x"
