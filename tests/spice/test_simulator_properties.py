"""Property-based tests of simulator-wide invariants.

These pin down the physics/numerics contracts the higher layers rely
on: linear-circuit superposition, reciprocity of resistive networks,
integration-order behaviour of the transient methods, and the EKV
model's drain/source antisymmetry.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.spice import Circuit, OperatingPoint, Transient
from repro.spice.devices import (
    Capacitor, Mosfet, Pulse, Resistor, VoltageSource,
)
from repro.spice.transient import TransientOptions

resistances = st.floats(min_value=10.0, max_value=1e6)
voltages = st.floats(min_value=-5.0, max_value=5.0)


def ladder_circuit(r_values, v1, v2):
    """A resistor ladder driven by two sources (always solvable)."""
    ckt = Circuit("ladder")
    ckt.add(VoltageSource("va", "n0", "0", dc=v1))
    ckt.add(VoltageSource("vb", f"n{len(r_values)}", "0", dc=v2))
    for i, r in enumerate(r_values):
        ckt.add(Resistor(f"r{i}", f"n{i}", f"n{i + 1}", r))
        ckt.add(Resistor(f"rg{i}", f"n{i + 1}", "0", 10 * r))
    return ckt


class TestLinearSuperposition:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(resistances, min_size=2, max_size=6),
           voltages, voltages)
    def test_superposition(self, r_values, v1, v2):
        """V(node | v1, v2) = V(node | v1, 0) + V(node | 0, v2)."""
        mid = f"n{len(r_values) // 2}"
        both = OperatingPoint(ladder_circuit(r_values, v1, v2)).run()[mid]
        only_a = OperatingPoint(ladder_circuit(r_values, v1, 0.0)
                                ).run()[mid]
        only_b = OperatingPoint(ladder_circuit(r_values, 0.0, v2)
                                ).run()[mid]
        assert both == pytest.approx(only_a + only_b, rel=1e-6,
                                     abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(resistances, min_size=2, max_size=6), voltages)
    def test_scaling(self, r_values, v1):
        """Doubling the only source doubles every node voltage."""
        mid = f"n{len(r_values) // 2}"
        base = OperatingPoint(ladder_circuit(r_values, v1, 0.0)
                              ).run()[mid]
        doubled = OperatingPoint(ladder_circuit(r_values, 2 * v1, 0.0)
                                 ).run()[mid]
        assert doubled == pytest.approx(2 * base, rel=1e-6, abs=1e-9)


class TestReciprocity:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(resistances, min_size=3, max_size=6))
    def test_transfer_resistance_symmetric(self, r_values):
        """For a reciprocal (resistive) network, V_j from a source at i
        equals V_i from the same source at j."""
        def transfer(inject_at, observe_at):
            ckt = Circuit("recip")
            from repro.spice.devices import CurrentSource
            ckt.add(CurrentSource("itest", "0", inject_at, dc=1e-3))
            for i, r in enumerate(r_values):
                ckt.add(Resistor(f"r{i}", f"n{i}", f"n{i + 1}", r))
                ckt.add(Resistor(f"rg{i}", f"n{i}", "0", 5 * r))
            ckt.add(Resistor("rend", f"n{len(r_values)}", "0",
                             r_values[0]))
            return OperatingPoint(ckt).run()[observe_at]

        first, last = "n0", f"n{len(r_values)}"
        forward = transfer(first, last)
        backward = transfer(last, first)
        assert forward == pytest.approx(backward, rel=1e-6, abs=1e-12)


class TestIntegrationAccuracy:
    def _rc_error(self, dv_max):
        ckt = Circuit("rc")
        ckt.add(VoltageSource("v", "in", "0", shape=Pulse(
            0, 1, delay=0.5e-9, rise=1e-12, fall=1e-12, width=40e-9,
            period=100e-9)))
        ckt.add(Resistor("r", "in", "out", 1e3))
        ckt.add(Capacitor("c", "out", "0", 1e-12))
        res = Transient(ckt, 4.5e-9,
                        TransientOptions(dv_max=dv_max)).run()
        errors = []
        for t_ns in (1.5, 2.5, 3.5):
            t = t_ns * 1e-9
            exact = 1.0 - math.exp(-(t - 0.5e-9) / 1e-9)
            errors.append(abs(res.wave("out").value_at(t) - exact))
        return max(errors)

    def test_accuracy_floor_at_any_step_setting(self):
        # The engine's accuracy floor (h_max-limited tail steps) sits
        # near 2e-4 for this RC regardless of dv_max; every setting
        # must stay well under 1e-3.
        for dv_max in (0.2, 0.05, 0.02):
            assert self._rc_error(dv_max) < 1e-3

    def test_trapezoidal_beats_first_order_bound(self):
        # At dv_max 0.05 (roughly 20 points/swing), trapezoidal should
        # track an RC exponential to well under 1 %.
        assert self._rc_error(0.05) < 1e-2


class TestEkvSymmetry:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(vd=st.floats(min_value=0.0, max_value=1.4),
           vs=st.floats(min_value=0.0, max_value=1.4),
           vg=st.floats(min_value=0.0, max_value=1.4))
    def test_drain_source_antisymmetry(self, nmos_params, vd, vs, vg):
        """Swapping drain and source negates the current (the channel
        has no preferred direction; CLM/DIBL use |Vds| precisely to
        preserve this)."""
        device = Mosfet("m", "d", "g", "s", "b", nmos_params,
                        0.2e-6, 0.1e-6)
        forward = device.drain_current(vd, vg, vs, 0.0)
        backward = device.drain_current(vs, vg, vd, 0.0)
        scale = max(abs(forward), 1e-15)
        assert backward == pytest.approx(-forward, rel=1e-6,
                                         abs=scale * 1e-6)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(vg=st.floats(min_value=0.0, max_value=1.4),
           vd=st.floats(min_value=0.01, max_value=1.4))
    def test_current_monotone_in_gate(self, nmos_params, vg, vd):
        device = Mosfet("m", "d", "g", "s", "b", nmos_params,
                        0.2e-6, 0.1e-6)
        lower = device.drain_current(vd, vg, 0.0, 0.0)
        higher = device.drain_current(vd, vg + 0.05, 0.0, 0.0)
        assert higher >= lower


class TestKclAtConvergence:
    def test_mos_inverter_kcl(self, pdk):
        """At the converged OP, the supply current equals the PMOS
        channel current (KCL through the output node)."""
        from repro.cells import add_inverter
        from repro.spice.probes import device_currents
        ckt = Circuit("inv")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        ckt.add(VoltageSource("vin", "in", "0", dc=0.55))
        add_inverter(ckt, pdk, "g", "in", "out", "vdd")
        op = OperatingPoint(ckt).run()
        currents = device_currents(ckt, op.x)
        # PMOS drain current (into 'out') ~ -(NMOS drain current).
        assert currents["g.mp"] == pytest.approx(-currents["g.mn"],
                                                 rel=1e-3)
        # Supply delivers what the PMOS channel carries (gate-leak
        # corrections are orders of magnitude below the crowbar here).
        assert op.supply_current("vdd") == pytest.approx(
            -currents["g.mp"], rel=0.02)
