"""Property-based continuity battery for the EKV MOSFET model.

The Newton loop differentiates the model, so any kink or jump in Ids
or its stamped conductances turns directly into solver misbehaviour
(limit cycles at the seam, halving cascades in transient). These
hypothesis properties pin the two places piecewise models classically
break — the weak/strong-inversion boundary around ``vgs = vto`` and
the ``vds = 0`` crossing — and the monotonicities the physics demands:

* Ids and every conductance are C1: a small bias step moves the
  current by ``derivative * step`` to first order, *including* steps
  that straddle the seam.
* ``Ids(vds=0) == 0`` exactly (the forward and reverse EKV halves
  coincide bit for bit), and Ids carries the sign of Vds.
* With drain and source in their named roles (``vds >= 0``), Ids is
  nondecreasing in Vgs and Vds and the stamped ``gm``/``gds`` are
  nonnegative — no negative-conductance surprises for the matrix.

The EKV interpolation ``F(x) = softplus(x/2)^2`` is smooth by
construction; these tests keep it that way under refactors.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.spice.devices import Mosfet

# Bias ranges: the bench never leaves [-0.3, 1.5] V, and extreme
# reverse/subthreshold corners underflow to exact zeros where strict
# inequalities are meaningless.
_V = st.floats(min_value=-0.3, max_value=1.5)
_VDS = st.floats(min_value=0.0, max_value=1.4)
#: Offsets that keep vgs inside the inversion seam (vto ~ 0.35-0.39).
_SEAM = st.floats(min_value=-0.15, max_value=0.15)


@pytest.fixture
def pmos(pmos_params):
    return Mosfet("mp", "d", "g", "s", "b", pmos_params, w=0.4e-6,
                  l=0.1e-6)


def _fd(device, vd, vg, vs, vb, axis: int, h: float = 1e-7) -> float:
    """Central finite difference of Ids along one terminal voltage."""
    v = [vd, vg, vs, vb]
    lo, hi = list(v), list(v)
    lo[axis] -= h
    hi[axis] += h
    return (device.evaluate(*hi)[0] - device.evaluate(*lo)[0]) / (2 * h)


class TestSeamContinuity:
    """No jump and no kink across the weak/strong-inversion boundary."""

    @given(dv=_SEAM, vd=_VDS)
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_ids_step_matches_gm_across_seam(self, nmos, dv, vd):
        # A step that straddles vgs = vto: first-order Taylor from the
        # midpoint must predict the change (C1, not merely C0).
        vg = nmos.params.vto + dv
        h = 2e-4
        i_lo = nmos.evaluate(vd, vg - h, 0.0, 0.0)[0]
        i_hi = nmos.evaluate(vd, vg + h, 0.0, 0.0)[0]
        gm = nmos.evaluate(vd, vg, 0.0, 0.0)[2]
        assert i_hi - i_lo == pytest.approx(2 * h * gm, rel=1e-3,
                                            abs=1e-15)

    @given(dv=_SEAM, vd=_VDS)
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_gm_is_continuous_across_seam(self, nmos, dv, vd):
        # The stamped conductance itself may not jump either: a
        # piecewise model (distinct weak/strong formulas glued at vto)
        # fails here even when Ids happens to line up.
        vg = nmos.params.vto + dv
        h = 1e-5
        gm_lo = nmos.evaluate(vd, vg - h, 0.0, 0.0)[2]
        gm_hi = nmos.evaluate(vd, vg + h, 0.0, 0.0)[2]
        scale = max(abs(gm_lo), abs(gm_hi), 1e-12)
        assert abs(gm_hi - gm_lo) <= 1e-2 * scale

    @given(dv=_SEAM, vd=_VDS, vb=st.floats(min_value=-0.2, max_value=0.0))
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_jacobian_matches_finite_difference_at_seam(self, nmos, dv,
                                                       vd, vb):
        vg = nmos.params.vto + dv
        ids, gdd, gdg, gds_, gdb = nmos.evaluate(vd, vg, 0.0, vb)
        for axis, analytic in ((0, gdd), (1, gdg), (2, gds_), (3, gdb)):
            numeric = _fd(nmos, vd, vg, 0.0, vb, axis)
            assert analytic == pytest.approx(numeric, rel=1e-3,
                                             abs=1e-12), f"axis {axis}"


class TestVdsZeroCrossing:
    """The drain-source seam: exact zero, odd symmetry, smooth gds."""

    @settings(deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(vg=_V, vcm=st.floats(min_value=0.0, max_value=1.2))
    def test_ids_is_exactly_zero_at_vds_zero(self, nmos, pmos, vg, vcm):
        # The forward and reverse EKV halves get bit-identical inputs
        # at vd == vs, so the current is an exact float zero — the DC
        # operating point of an off device carries no phantom leakage.
        for device in (nmos, pmos):
            ids, _, gdg, _, _ = device.evaluate(vcm, vg, vcm, 0.0)
            assert ids == 0.0
            # And so is gm: the gate cannot move a zero current.
            assert gdg == 0.0

    @settings(deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(vg=_V, vds=st.floats(min_value=1e-3, max_value=1.4),
           vs=st.floats(min_value=0.0, max_value=0.2))
    def test_ids_sign_follows_vds(self, nmos, vg, vds, vs):
        forward = nmos.evaluate(vs + vds, vg, vs, 0.0)[0]
        reverse = nmos.evaluate(vs - vds, vg, vs, 0.0)[0]
        assert forward >= 0.0
        assert reverse <= 0.0

    @given(vg=_SEAM, vds=st.floats(min_value=1e-6, max_value=1e-3))
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_ids_continuous_through_vds_zero(self, nmos, vg, vds):
        # Straddle vds = 0 with a shrinking step: the change must be
        # bounded by the local channel conductance, no jump to an
        # "off-branch" value.
        vgate = nmos.params.vto + vg
        i_fwd, gdd, *_ = nmos.evaluate(vds, vgate, 0.0, 0.0)
        i_rev = nmos.evaluate(-vds, vgate, 0.0, 0.0)[0]
        assert i_fwd - i_rev == pytest.approx(2 * vds * gdd, rel=5e-2,
                                              abs=1e-15)

    @given(vg=_V, vds=st.floats(min_value=1e-6, max_value=5e-4))
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_gds_continuous_through_vds_zero(self, nmos, vg, vds):
        g_fwd = nmos.evaluate(vds, vg, 0.0, 0.0)[1]
        g_mid = nmos.evaluate(0.0, vg, 0.0, 0.0)[1]
        g_rev = nmos.evaluate(-vds, vg, 0.0, 0.0)[1]
        scale = max(abs(g_mid), 1e-15)
        assert abs(g_fwd - g_mid) <= 5e-2 * scale
        assert abs(g_rev - g_mid) <= 5e-2 * scale


def _monotone_floor(i1: float, i2: float) -> float:
    # The EKV current is analytically monotone, but its exp/log1p
    # evaluation carries ~1e-9 relative noise; for bias deltas below
    # that resolution (hypothesis will find femtovolt pairs) the
    # ordering of two nearly-equal currents is float noise, not model
    # behaviour.
    return 1e-9 * max(abs(i1), abs(i2)) + 1e-24


class TestMonotonicity:
    """Where the physics orders the currents, the model must too."""

    @settings(deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(vd=_VDS, lo=_V, hi=_V)
    def test_ids_nondecreasing_in_vgs(self, nmos, vd, lo, hi):
        vg1, vg2 = sorted((lo, hi))
        i1 = nmos.evaluate(vd, vg1, 0.0, 0.0)[0]
        i2 = nmos.evaluate(vd, vg2, 0.0, 0.0)[0]
        assert i2 >= i1 - _monotone_floor(i1, i2)

    @settings(deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(vg=_V, lo=_VDS, hi=_VDS)
    def test_ids_nondecreasing_in_vds(self, nmos, vg, lo, hi):
        vd1, vd2 = sorted((lo, hi))
        i1 = nmos.evaluate(vd1, vg, 0.0, 0.0)[0]
        i2 = nmos.evaluate(vd2, vg, 0.0, 0.0)[0]
        assert i2 >= i1 - _monotone_floor(i1, i2)

    @settings(deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(vd=_VDS, vg=_V)
    def test_stamped_conductances_nonnegative(self, nmos, vd, vg):
        # gm and gds land on the matrix diagonal via the drain row;
        # negative values there invite singular iterates.
        _, gdd, gdg, _, _ = nmos.evaluate(vd, vg, 0.0, 0.0)
        assert gdd >= 0.0
        assert gdg >= 0.0

    @given(vd=st.floats(min_value=1e-3, max_value=1.4), dv=_SEAM)
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_conductances_strictly_positive_near_seam(self, nmos, vd,
                                                      dv):
        # With a real drain bias the device is never stamped with an
        # exactly-zero gds or gm near the seam (the analytic floor,
        # distinct from the solver's gmin safeguard). At vds = 0 both
        # Ids and gm are exactly zero by symmetry — that case is pinned
        # in TestVdsZeroCrossing instead.
        vg = nmos.params.vto + dv
        _, gdd, gdg, _, _ = nmos.evaluate(vd, vg, 0.0, 0.0)
        assert gdd > 0.0
        assert gdg > 0.0


class TestScalarVectorSeam:
    """The seam behaviour survives the batched array path unchanged."""

    def test_vectorized_seam_sweep_matches_scalar(self, nmos):
        from repro.spice.devices.mosfet import ekv_evaluate
        vg = nmos.params.vto + np.linspace(-0.15, 0.15, 101)
        vd = np.full_like(vg, 0.6)
        zeros = np.zeros_like(vg)
        vec = ekv_evaluate(*nmos.kernel_params(), vd, vg, zeros, zeros)
        for k in range(vg.size):
            scalar = nmos.evaluate(0.6, float(vg[k]), 0.0, 0.0)
            for field_index, value in enumerate(scalar):
                assert value == vec[field_index][k]

    def test_no_kink_in_dense_seam_sweep(self, nmos):
        # Second-difference screen over a dense Vgs sweep: a C1 model
        # has bounded curvature; a glued piecewise model shows a spike
        # at the joint.
        from repro.spice.devices.mosfet import ekv_evaluate
        vg = nmos.params.vto + np.linspace(-0.2, 0.2, 2001)
        vd = np.full_like(vg, 0.6)
        zeros = np.zeros_like(vg)
        ids = ekv_evaluate(*nmos.kernel_params(), vd, vg, zeros,
                           zeros)[0]
        d2 = np.abs(np.diff(ids, n=2))
        # Curvature varies smoothly: neighbouring second differences
        # stay within a small factor of the local running maximum.
        window = np.maximum(d2[:-1], d2[1:])
        assert np.all(np.diff(d2) <= 0.5 * window + 1e-18)
