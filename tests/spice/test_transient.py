"""Tests for the adaptive transient engine."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.spice import Circuit, Transient
from repro.spice.devices import (
    Capacitor, Pulse, Pwl, Resistor, VoltageSource,
)
from repro.spice.transient import TransientOptions


def rc_circuit(tau=1e-9):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("v", "in", "0", shape=Pulse(
        0, 1, delay=1e-9, rise=1e-12, fall=1e-12, width=20e-9,
        period=100e-9)))
    ckt.add(Resistor("r", "in", "out", 1e3))
    ckt.add(Capacitor("c", "out", "0", tau / 1e3))
    return ckt


class TestBasics:
    def test_rejects_nonpositive_tstop(self):
        with pytest.raises(AnalysisError):
            Transient(rc_circuit(), 0.0)

    def test_rejects_bad_step_bounds(self):
        options = TransientOptions(h_max=1e-12, h_min=1e-11)
        with pytest.raises(AnalysisError):
            Transient(rc_circuit(), 1e-9, options).run()

    def test_result_times_monotonic(self):
        res = Transient(rc_circuit(), 3e-9).run()
        assert np.all(np.diff(res.times) > 0)

    def test_starts_at_zero_ends_at_tstop(self):
        res = Transient(rc_circuit(), 3e-9).run()
        assert res.times[0] == 0.0
        assert res.times[-1] == pytest.approx(3e-9, rel=1e-9)

    def test_breakpoints_hit_exactly(self):
        res = Transient(rc_circuit(), 3e-9).run()
        # The pulse delay edge at 1 ns must be an exact sample.
        assert np.any(np.isclose(res.times, 1e-9, rtol=0, atol=1e-21))

    def test_ground_wave_is_zero(self):
        res = Transient(rc_circuit(), 2e-9).run()
        assert res.wave("0").maximum() == 0.0

    def test_state_at_returns_nearest(self):
        res = Transient(rc_circuit(), 2e-9).run()
        state = res.state_at(1.5e-9)
        assert state.shape == (res.circuit.system_size(),)

    def test_sample_count_property(self):
        res = Transient(rc_circuit(), 2e-9).run()
        assert res.sample_count == len(res.times)


class TestAccuracy:
    def test_rc_time_constant(self):
        res = Transient(rc_circuit(), 6e-9).run()
        w = res.wave("out")
        assert w.value_at(2e-9) == pytest.approx(1 - np.exp(-1), abs=0.01)

    def test_tighter_dvmax_more_samples(self):
        loose = Transient(rc_circuit(), 3e-9,
                          TransientOptions(dv_max=0.2)).run()
        tight = Transient(rc_circuit(), 3e-9,
                          TransientOptions(dv_max=0.02)).run()
        assert tight.sample_count > loose.sample_count

    def test_linearity_superposition(self):
        # Doubling the drive doubles the response (linear RC).
        ckt1 = rc_circuit()
        res1 = Transient(ckt1, 3e-9).run()
        ckt2 = Circuit("rc2")
        ckt2.add(VoltageSource("v", "in", "0", shape=Pulse(
            0, 2, delay=1e-9, rise=1e-12, fall=1e-12, width=20e-9,
            period=100e-9)))
        ckt2.add(Resistor("r", "in", "out", 1e3))
        ckt2.add(Capacitor("c", "out", "0", 1e-12))
        res2 = Transient(ckt2, 3e-9).run()
        v1 = res1.wave("out").value_at(2e-9)
        v2 = res2.wave("out").value_at(2e-9)
        assert v2 == pytest.approx(2 * v1, rel=0.02)

    def test_pwl_stimulus_tracked(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "in", "0", shape=Pwl(
            [(0.5e-9, 0.0), (1.0e-9, 1.0), (2.0e-9, 0.25)])))
        ckt.add(Resistor("r", "in", "0", 1e3))
        res = Transient(ckt, 3e-9).run()
        w = res.wave("in")
        assert w.value_at(1.0e-9) == pytest.approx(1.0, abs=0.02)
        assert w.value_at(2.5e-9) == pytest.approx(0.25, abs=0.02)

    def test_supply_current_waveform(self):
        res = Transient(rc_circuit(), 4e-9).run()
        i = res.supply_current("v")
        # Peak charging current at the edge is ~(1 V / 1 kOhm).
        assert i.maximum() == pytest.approx(1e-3, rel=0.15)

    def test_warm_start_x0(self):
        ckt = rc_circuit()
        res1 = Transient(ckt, 2e-9).run()
        final = res1.final_state()
        # Re-running from the final state works and stays consistent.
        ckt.unfreeze()
        ckt.finalize()
        res2 = Transient(ckt, 1e-9).run(x0=final)
        assert res2.sample_count > 2


class TestMosTransient:
    def test_inverter_switching(self, pdk):
        from repro.cells import add_inverter
        ckt = Circuit("inv")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        ckt.add(VoltageSource("vin", "in", "0", shape=Pulse(
            0, 1.2, delay=0.3e-9, rise=1e-11, fall=1e-11, width=0.6e-9,
            period=2e-9)))
        add_inverter(ckt, pdk, "inv", "in", "out", "vdd")
        ckt.add(Capacitor("cl", "out", "0", 1e-15))
        res = Transient(ckt, 1.4e-9).run()
        out = res.wave("out")
        assert out.value_at(0.25e-9) == pytest.approx(1.2, abs=0.05)
        assert out.value_at(0.8e-9) == pytest.approx(0.0, abs=0.05)
        assert out.value_at(1.35e-9) == pytest.approx(1.2, abs=0.08)

    def test_ring_oscillator_oscillates(self, pdk):
        from repro.cells import add_inverter
        ckt = Circuit("ring")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        nodes = ["n0", "n1", "n2"]
        for i in range(3):
            add_inverter(ckt, pdk, f"i{i}", nodes[i],
                         nodes[(i + 1) % 3], "vdd")
        # Kick the loop out of its metastable DC point.
        ckt.add(VoltageSource("vkick", "kick", "0", shape=Pulse(
            0, 1.2, delay=0.05e-9, rise=1e-11, fall=1e-11,
            width=0.2e-9, period=50e-9)))
        ckt.add(Capacitor("ck", "kick", "n0", 0.5e-15))
        res = Transient(ckt, 3e-9).run()
        w = res.wave("n0")
        crossings = w.crossings(0.6)
        assert len(crossings) >= 4, "ring oscillator failed to oscillate"
