"""Differential harness: the sparse pattern-reuse LU vs the dense path.

The tolerance contract pinned here (and documented in
:mod:`repro.spice.sparse`):

* **Same-kernel path — 0 ULP.** Serial and batched Newton running the
  *same* kernel (both sparse or both dense) are bitwise identical:
  :func:`repro.spice.sparse.resolve_solver` is deterministic in
  (mode, system size) alone, and the sparse numeric phase applies
  identical per-lane float operations regardless of batch membership.
* **Cross-kernel bound — :data:`SPARSE_VS_DENSE_ULP` ULP.** Sparse and
  dense solve the same system through different elimination orders, so
  their solutions agree only to a small ULP bound on well-conditioned
  systems. The hypothesis properties below pin that bound across
  random patterned systems and across the real testbench's DC /
  gmin-ladder / transient regimes.
* **Negative control.** A perturbation well inside engineering
  tolerance (1 part in 1e6) blows through the bound by orders of
  magnitude, proving the ULP metric and the bound are tight enough to
  catch a genuinely different answer — the bound is not vacuous.
* **Singular lanes.** A numerically singular lane surfaces as a
  non-finite solution under suppressed FP flags — the dense gufunc's
  convention — and never perturbs its neighbors' bits.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError, ConvergenceError
from repro.pdk.variation import VariationSpec, VariedPdk
from repro.core.testbench import InputStep, build_testbench
from repro.spice.assembly import SolverWorkspace
from repro.spice.batch import BatchTransient, LaneGroup, _solve_stack
from repro.spice.newton import NewtonOptions, newton_solve, solve_dc
from repro.spice.sparse import (
    SPARSE_AUTO_THRESHOLD, SparsePlan, SparseUnsupported, ambient_solver,
    resolve_solver, solver_scope, sparse_plan_for, structural_pattern,
    validate_solver,
)
from repro.spice.transient import Transient, TransientOptions

pytestmark = pytest.mark.batch

#: Documented sparse-vs-dense agreement bound (in representable-float
#: steps) for well-conditioned systems. Different elimination order =
#: different rounding; this is the measured envelope with margin, and
#: the negative control shows a real discrepancy lands far beyond it.
SPARSE_VS_DENSE_ULP = 4096

#: The same bound for the *real* MNA testbench system, whose mixed
#: volt/ampere scaling puts its condition number near 1e11 — the
#: cross-kernel distance is condition-limited there (measured worst
#: ~1.4e6 ULP across seeds). Still tight: a relative rhs perturbation
#: of just 1e-9 lands at ~7.9e6 ULP, beyond this bound (the negative
#: control in TestTestbenchRegimes).
SPARSE_VS_DENSE_ULP_MNA = 2 ** 22

STEPS = [InputStep(0.2e-9, True), InputStep(1.0e-9, False)]
T_STOP = 1.5e-9


def max_ulp_delta(a, b) -> int:
    """Largest per-element distance in representable-float steps."""
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    ia, ib = a.view(np.int64), b.view(np.int64)
    mask = np.int64(0x7FFFFFFFFFFFFFFF)
    ia = ia ^ ((ia >> 63) & mask)
    ib = ib ^ ((ib >> 63) & mask)
    return int(np.max(np.abs(ia - ib), initial=0))


def _lane_circuit(k: int, seed: int = 7):
    rng = np.random.default_rng(np.random.SeedSequence([seed, k]))
    pdk = VariedPdk(rng, VariationSpec())
    circuit, _ = build_testbench(pdk, "sstvs", 0.8, 1.2, steps=STEPS)
    return circuit


def _patterned_system(rng, n: int, density: float):
    """A random diagonally-dominant system confined to a random pattern."""
    pattern = rng.random((n, n)) < density
    np.fill_diagonal(pattern, True)
    values = rng.standard_normal((n, n)) * pattern
    values += np.eye(n) * (2.0 * n)  # dominance keeps conditioning tame
    rhs = rng.standard_normal(n)
    return pattern, values, rhs


# -- selection rule -------------------------------------------------------

class TestSolverSelection:
    def test_auto_is_deterministic_in_size_alone(self):
        assert resolve_solver("auto", SPARSE_AUTO_THRESHOLD - 1) == "dense"
        assert resolve_solver("auto", SPARSE_AUTO_THRESHOLD) == "sparse"
        assert resolve_solver("dense", 10 ** 6) == "dense"
        assert resolve_solver("sparse", 2) == "sparse"

    def test_invalid_mode_rejected(self):
        with pytest.raises(AnalysisError, match="solver must be one of"):
            validate_solver("cholesky")

    def test_scope_composes_and_restores(self):
        assert ambient_solver() == "auto"
        with solver_scope("sparse"):
            assert ambient_solver() == "sparse"
            with solver_scope(None):
                assert ambient_solver() == "sparse"
            with solver_scope("dense"):
                assert ambient_solver() == "dense"
        assert ambient_solver() == "auto"


# -- hypothesis: sparse vs dense within the bound, any pattern ------------

class TestSparseVsDenseBound:
    @given(seed=st.integers(0, 2 ** 31 - 1), n=st.integers(3, 24),
           density=st.floats(0.15, 0.9))
    @settings(max_examples=60, deadline=None)
    def test_single_system_within_bound(self, seed, n, density):
        rng = np.random.default_rng(seed)
        pattern, values, rhs = _patterned_system(rng, n, density)
        plan = SparsePlan(pattern)
        x_sparse = plan.solve1(values, rhs)
        x_dense = _solve_stack(values[None], rhs[None])[0]
        assert np.isfinite(x_sparse).all()
        assert max_ulp_delta(x_sparse, x_dense) <= SPARSE_VS_DENSE_ULP

    @given(seed=st.integers(0, 2 ** 31 - 1), lanes=st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_lane_stack_bitwise_invariant_to_membership(self, seed,
                                                        lanes):
        # The 0-ULP half of the contract: batching never perturbs a
        # lane's sparse solution, exactly like the dense gufunc.
        rng = np.random.default_rng(seed)
        pattern, _, _ = _patterned_system(rng, 12, 0.4)
        plan = SparsePlan(pattern)
        # Every lane gets its own values confined to the shared pattern.
        mats = rng.standard_normal((lanes, 12, 12)) * pattern
        mats += np.eye(12) * 24.0
        rhs = rng.standard_normal((lanes, 12))
        full = plan.solve(mats, rhs)
        for k in range(lanes):
            alone = plan.solve1(mats[k], rhs[k])
            assert np.array_equal(full[k], alone), f"lane {k}"

    def test_negative_control_bound_is_tight(self):
        # A perturbation far below engineering tolerance exceeds the
        # ULP bound by orders of magnitude: agreement to
        # SPARSE_VS_DENSE_ULP is a meaningful statement, not slack.
        rng = np.random.default_rng(20080310)
        pattern, values, rhs = _patterned_system(rng, 16, 0.5)
        plan = SparsePlan(pattern)
        x = plan.solve1(values, rhs)
        x_perturbed = plan.solve1(values, rhs * (1.0 + 1e-6))
        assert max_ulp_delta(x, x_perturbed) > SPARSE_VS_DENSE_ULP

    def test_structurally_singular_pattern_rejected(self):
        pattern = np.zeros((3, 3), dtype=bool)
        pattern[0, 0] = pattern[1, 0] = pattern[2, 1] = True
        with pytest.raises(SparseUnsupported, match="singular"):
            SparsePlan(pattern)


# -- singular lanes -------------------------------------------------------

class TestSingularLanes:
    def test_numerically_singular_lane_yields_nonfinite(self):
        rng = np.random.default_rng(3)
        pattern, values, rhs = _patterned_system(rng, 10, 0.5)
        plan = SparsePlan(pattern)
        stack = np.stack([values, values.copy(), values])
        stack[1, 4, :] = 0.0  # zero pivot row: numerically singular
        rhs3 = np.stack([rhs, rhs, rhs])
        saved = np.seterr(invalid="ignore", over="ignore",
                          divide="ignore")
        try:
            out = plan.solve(stack, rhs3)
        finally:
            np.seterr(**saved)
        clean = plan.solve1(values, rhs)
        # The sick lane surfaces as non-finite entries (the dense
        # gufunc convention); the healthy lanes are bitwise untouched.
        assert not np.isfinite(out[1]).all()
        assert np.array_equal(out[0], clean)
        assert np.array_equal(out[2], clean)

    def test_batched_newton_classifies_singular_like_dense(self):
        # A NaN supply makes the first iterate non-finite under either
        # kernel; the failure text must match the dense path's exactly.
        circuits = [_lane_circuit(0), _lane_circuit(1)]
        group_s = LaneGroup(circuits)
        x0 = np.zeros((2, group_s.size))
        x0[1, 0] = np.nan
        res_sparse = group_s.newton(
            np.arange(2), x0.copy(), times=[0.0, 0.0],
            integrators=[None, None],
            options=NewtonOptions(solver="sparse"))
        group_d = LaneGroup([_lane_circuit(0), _lane_circuit(1)])
        res_dense = group_d.newton(
            np.arange(2), x0.copy(), times=[0.0, 0.0],
            integrators=[None, None],
            options=NewtonOptions(solver="dense"))
        assert not res_sparse.converged[1] and not res_dense.converged[1]
        assert res_sparse.errors[1] == res_dense.errors[1]
        assert "non-finite solution at iteration 0" in res_sparse.errors[1]


# -- the real testbench: DC / gmin ladder / transient regimes -------------

class TestTestbenchRegimes:
    def test_pattern_covers_every_stamped_position(self):
        ws = SolverWorkspace(_lane_circuit(0))
        pattern = structural_pattern(ws.plan)
        assert pattern is not None
        plan = sparse_plan_for(ws.plan)
        assert plan is not None and plan.n == ws.size
        # Assemble a real iterate both regimes; no value may land
        # outside the symbolic pattern (the factorization would be
        # silently wrong, not just slow).
        rng = np.random.default_rng(11)
        x = rng.uniform(-0.2, 1.4, ws.size)
        for integ in (None,):
            ws.begin_solve(0.0, integ, 1e-10, 1.0)
            ws.assemble_iteration(x)
            outside = ws.system.matrix[~pattern]
            assert np.all(outside == 0.0)

    def test_serial_vs_batched_sparse_dc_bitwise(self):
        # Same kernel on both sides -> the harness's 0-ULP claim holds
        # for the sparse path exactly as the dense one.
        opts = NewtonOptions(solver="sparse")
        circuits = [_lane_circuit(k) for k in range(3)]
        seeds = np.stack([solve_dc(_lane_circuit(k)) for k in range(3)])
        group = LaneGroup(circuits)
        res = group.newton(np.arange(3), seeds.copy(), times=[0.0] * 3,
                           integrators=[None] * 3, options=opts)
        assert res.converged.all()
        for k in range(3):
            x_serial = newton_solve(_lane_circuit(k), seeds[k].copy(),
                                    options=opts)
            assert np.array_equal(res.x[k], x_serial), f"lane {k}"

    def test_single_solve_on_real_system_within_bound(self):
        # The ULP bound is a per-linear-solve claim; Newton fixed
        # points across kernels agree only to the convergence
        # tolerance (each kernel walks its own iterate path). Assemble
        # the real Jacobian at the DC operating point and solve it
        # once through both kernels.
        circuit = _lane_circuit(0)
        x_op = solve_dc(circuit)
        ws = SolverWorkspace(circuit)
        ws.begin_solve(0.0, None, 1e-12, 1.0)
        ws.assemble_iteration(x_op)
        matrix = ws.system.matrix.copy()
        rhs = ws.system.rhs.copy()
        x_dense = _solve_stack(matrix[None], rhs[None])[0]
        plan = sparse_plan_for(ws.plan)
        x_sparse = plan.solve1(matrix, rhs)
        assert np.isfinite(x_sparse).all()
        assert max_ulp_delta(x_sparse, x_dense) <= SPARSE_VS_DENSE_ULP_MNA
        # Negative control at the real system's conditioning: a 1e-9
        # relative rhs change exceeds the bound, so agreement within
        # it distinguishes same-system solutions from different ones.
        x_perturbed = plan.solve1(matrix, rhs * (1.0 + 1e-9))
        assert max_ulp_delta(x_sparse, x_perturbed) > \
            SPARSE_VS_DENSE_ULP_MNA

    def test_sparse_dc_fixed_point_near_dense(self):
        circuits = [_lane_circuit(k) for k in range(2)]
        seeds = np.stack([solve_dc(_lane_circuit(k)) for k in range(2)])
        group = LaneGroup(circuits)
        dense = group.newton(np.arange(2), seeds.copy(), times=[0.0] * 2,
                             integrators=[None] * 2,
                             options=NewtonOptions(solver="dense"))
        sparse = group.newton(np.arange(2), seeds.copy(),
                              times=[0.0] * 2, integrators=[None] * 2,
                              options=NewtonOptions(solver="sparse"))
        assert dense.converged.all() and sparse.converged.all()
        np.testing.assert_allclose(sparse.x, dense.x, rtol=1e-7,
                                   atol=1e-9)

    def test_gmin_ladder_sparse_outcome_matches_serial(self):
        # Across the gmin ladder's rungs the serial and batched sparse
        # paths must agree on the *outcome* — bitwise solutions where
        # Newton converges, identical failure classification where it
        # does not (harsh gmin from a far seed legitimately diverges).
        opts = NewtonOptions(solver="sparse")
        circuit = _lane_circuit(2)
        group = LaneGroup([_lane_circuit(2)])
        outcomes = []
        for gmin in (1e-6, 1e-11, 1e-12, 1e-13):
            seed = solve_dc(_lane_circuit(2))
            res = group.newton(np.arange(1), seed[None].copy(),
                               times=[0.0], integrators=[None],
                               options=opts, gmin=gmin)
            try:
                x_serial = newton_solve(circuit, seed.copy(),
                                        options=opts, gmin=gmin)
            except ConvergenceError as err:
                assert not res.converged[0], f"gmin {gmin}"
                assert res.errors[0] == str(err), f"gmin {gmin}"
                outcomes.append("failed")
            else:
                assert res.converged[0], f"gmin {gmin}"
                assert np.array_equal(res.x[0], x_serial), f"gmin {gmin}"
                outcomes.append("converged")
        # The ladder's easy rungs must actually exercise the bitwise
        # branch, or this test proves nothing.
        assert outcomes.count("converged") >= 2

    def test_transient_sparse_serial_vs_batched_bitwise(self):
        opts = TransientOptions(h_max=50e-12,
                                newton=NewtonOptions(solver="sparse"))
        circuits = [_lane_circuit(k) for k in range(2)]
        batched = BatchTransient(circuits, T_STOP, opts).run()
        assert batched.ok(0) and batched.ok(1)
        for k in range(2):
            serial = Transient(_lane_circuit(k), T_STOP, opts).run()
            lane = batched.lane(k)
            assert np.array_equal(lane.times, serial.times), f"lane {k}"
            assert np.array_equal(lane._states, serial._states), \
                f"lane {k}"

    def test_transient_sparse_within_bound_of_dense(self):
        sparse_opts = TransientOptions(
            h_max=50e-12, newton=NewtonOptions(solver="sparse"))
        dense_opts = TransientOptions(
            h_max=50e-12, newton=NewtonOptions(solver="dense"))
        sparse = Transient(_lane_circuit(0), T_STOP, sparse_opts).run()
        dense = Transient(_lane_circuit(0), T_STOP, dense_opts).run()
        # Different rounding -> possibly different adaptive paths; the
        # claim is numerical agreement wherever both engines sampled.
        grid = np.linspace(0.0, T_STOP, 64)
        for col in range(sparse._states.shape[1]):
            a = np.interp(grid, sparse.times, sparse._states[:, col])
            b = np.interp(grid, dense.times, dense._states[:, col])
            np.testing.assert_allclose(a, b, rtol=1e-6, atol=1e-9)
