"""Tests for the ASCII waveform renderer."""

import pytest

from repro.errors import AnalysisError
from repro.spice.plot import render_transient, render_waveforms
from repro.spice.waveform import Waveform


def ramp():
    return Waveform([0.0, 1e-9], [0.0, 1.0])


class TestRenderWaveforms:
    def test_basic_render(self):
        text = render_waveforms({"a": ramp()}, width=30, height=6)
        assert "#=a" in text
        assert text.count("|") == 6

    def test_two_traces_distinct_glyphs(self):
        flat = Waveform([0.0, 1e-9], [0.5, 0.5])
        text = render_waveforms({"a": ramp(), "b": flat},
                                width=30, height=6)
        assert "#=a" in text and "*=b" in text
        assert "*" in text

    def test_axis_labels(self):
        text = render_waveforms({"a": ramp()}, width=30, height=6)
        assert "0s" in text
        assert "1ns" in text

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            render_waveforms({})

    def test_tiny_area_rejected(self):
        with pytest.raises(AnalysisError):
            render_waveforms({"a": ramp()}, width=5, height=2)

    def test_flat_trace_no_division_error(self):
        flat = Waveform([0.0, 1e-9], [0.7, 0.7])
        text = render_waveforms({"a": flat}, width=20, height=4)
        assert "#" in text

    def test_window_clamping(self):
        text = render_waveforms({"a": ramp()}, width=20, height=4,
                                t_start=0.2e-9, t_stop=0.8e-9)
        assert "200ps" in text

    def test_bad_window(self):
        with pytest.raises(AnalysisError):
            render_waveforms({"a": ramp()}, t_start=1.0, t_stop=1.0)


class TestRenderTransient:
    def test_from_result(self):
        from repro.spice import Circuit, Transient
        from repro.spice.devices import (
            Capacitor, Pulse, Resistor, VoltageSource,
        )
        ckt = Circuit("rc")
        ckt.add(VoltageSource("v", "in", "0", shape=Pulse(
            0, 1, delay=0.5e-9, rise=1e-12, fall=1e-12, width=2e-9,
            period=8e-9)))
        ckt.add(Resistor("r", "in", "out", 1e3))
        ckt.add(Capacitor("c", "out", "0", 1e-13))
        res = Transient(ckt, 3e-9).run()
        text = render_transient(res, ["in", "out"], width=40, height=8)
        assert "#=in" in text and "*=out" in text
