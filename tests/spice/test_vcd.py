"""Tests for VCD export and waveform digitizing."""

import pytest

from repro.errors import AnalysisError
from repro.spice import Circuit, Transient
from repro.spice.devices import Capacitor, Pulse, Resistor, VoltageSource
from repro.spice.vcd import digitize, write_vcd
from repro.spice.waveform import Waveform


@pytest.fixture(scope="module")
def rc_result():
    ckt = Circuit("rc")
    ckt.add(VoltageSource("v", "in", "0", shape=Pulse(
        0, 1, delay=1e-9, rise=1e-12, fall=1e-12, width=10e-9,
        period=40e-9)))
    ckt.add(Resistor("r", "in", "out", 1e3))
    ckt.add(Capacitor("c", "out", "0", 1e-12))
    return Transient(ckt, 4e-9).run()


class TestWriteVcd:
    def test_header_sections(self, rc_result):
        text = write_vcd(rc_result, ["in", "out"])
        assert "$timescale 1ps $end" in text
        assert "$enddefinitions $end" in text
        assert "$var real 64" in text

    def test_node_names_sanitized(self, rc_result):
        text = write_vcd(rc_result, ["in"])
        assert " in $end" in text

    def test_real_values_emitted(self, rc_result):
        text = write_vcd(rc_result, ["in"])
        assert any(line.startswith("r") for line in text.splitlines())
        assert any(line.startswith("#") for line in text.splitlines())

    def test_unchanged_values_skipped(self, rc_result):
        # The input holds 0 V for the first nanosecond; those samples
        # must collapse into a single change.
        text = write_vcd(rc_result, ["in"])
        zero_lines = [l for l in text.splitlines()
                      if l.startswith("r0 ")]
        assert len(zero_lines) == 1

    def test_needs_nodes(self, rc_result):
        with pytest.raises(AnalysisError):
            write_vcd(rc_result, [])

    def test_bad_timescale(self, rc_result):
        with pytest.raises(AnalysisError):
            write_vcd(rc_result, ["in"], timescale="1 fortnight")

    def test_identifier_uniqueness(self, rc_result):
        text = write_vcd(rc_result, ["in", "out"])
        var_lines = [l for l in text.splitlines() if l.startswith("$var")]
        idents = [l.split()[3] for l in var_lines]
        assert len(set(idents)) == 2


class TestDigitize:
    def test_clean_edges(self):
        wave = Waveform([0, 1, 2, 3, 4], [0.0, 0.0, 1.2, 1.2, 0.0])
        changes = digitize(wave, vdd=1.2)
        states = [s for _, s in changes]
        assert states == ["0", "1", "0"]

    def test_x_region(self):
        wave = Waveform([0, 1, 2], [0.0, 0.6, 1.2])
        states = [s for _, s in digitize(wave, vdd=1.2)]
        assert states == ["0", "x", "1"]

    def test_threshold_validation(self):
        wave = Waveform([0, 1], [0.0, 1.0])
        with pytest.raises(AnalysisError):
            digitize(wave, vdd=1.0, low_fraction=0.8, high_fraction=0.2)

    def test_merging(self):
        wave = Waveform([0, 1, 2, 3], [0.0, 0.05, 0.1, 0.0])
        assert len(digitize(wave, vdd=1.2)) == 1
