"""Tests for the Newton solver, homotopy fallbacks, and OP analysis."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.spice import Circuit, OperatingPoint
from repro.spice.devices import (
    Diode, Mosfet, Resistor, VoltageSource,
)
from repro.spice.newton import NewtonOptions, newton_solve, solve_dc


class TestLinearSolve:
    def test_divider_from_zero_guess(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=1.0))
        ckt.add(Resistor("r1", "a", "m", 1e3))
        ckt.add(Resistor("r2", "m", "0", 1e3))
        ckt.finalize()
        x = newton_solve(ckt, np.zeros(ckt.system_size()))
        assert x[ckt.node_index("m")] == pytest.approx(0.5, rel=1e-6)

    def test_converges_in_few_iterations_for_linear(self):
        # Linear circuits must converge essentially immediately.
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=1.0))
        ckt.add(Resistor("r1", "a", "0", 1e3))
        ckt.finalize()
        options = NewtonOptions(max_iterations=8)
        x = newton_solve(ckt, np.zeros(ckt.system_size()), options=options)
        assert np.isfinite(x).all()


class TestDiodeCircuit:
    def _diode_circuit(self, vdd=5.0):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=vdd))
        ckt.add(Resistor("r", "a", "d", 1e3))
        ckt.add(Diode("d1", "d", "0"))
        return ckt

    def test_forward_drop(self):
        ckt = self._diode_circuit()
        op = OperatingPoint(ckt).run()
        assert 0.5 < op["d"] < 0.85

    def test_current_consistent(self):
        ckt = self._diode_circuit()
        op = OperatingPoint(ckt).run()
        i_r = (op["a"] - op["d"]) / 1e3
        assert op.supply_current("v") == pytest.approx(i_r, rel=1e-6)

    def test_reverse_blocked(self):
        ckt = self._diode_circuit(vdd=-5.0)
        op = OperatingPoint(ckt).run()
        # All the voltage drops across the diode.
        assert op["d"] == pytest.approx(-5.0, abs=0.05)


class TestMosCircuits:
    def test_diode_connected_nmos(self, pdk):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=1.2))
        ckt.add(Resistor("r", "a", "d", 10e3))
        ckt.add(pdk.mosfet("m", "d", "d", "0", "0", "n", 0.2e-6))
        op = OperatingPoint(ckt).run()
        # Gate-drain tied: settles a bit above threshold.
        assert 0.35 < op["d"] < 0.9

    def test_inverter_transfer_extremes(self, pdk):
        from repro.cells import add_inverter
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0))
        add_inverter(ckt, pdk, "inv", "in", "out", "vdd")
        op = OperatingPoint(ckt).run()
        assert op["out"] == pytest.approx(1.2, abs=0.01)

    def test_solve_dc_recovers_with_homotopy(self, pdk):
        # A cross-coupled latch: plain Newton from zeros may struggle;
        # solve_dc must return *some* consistent solution.
        ckt = Circuit("latch")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        from repro.cells import add_inverter
        add_inverter(ckt, pdk, "i1", "a", "b", "vdd")
        add_inverter(ckt, pdk, "i2", "b", "a", "vdd")
        ckt.finalize()
        x = solve_dc(ckt)
        va = x[ckt.node_index("a")]
        vb = x[ckt.node_index("b")]
        assert np.isfinite(va) and np.isfinite(vb)
        assert -0.1 <= va <= 1.3 and -0.1 <= vb <= 1.3


class TestFailureModes:
    def test_iteration_budget_exhaustion_raises(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=5.0))
        ckt.add(Resistor("r", "a", "d", 1e3))
        ckt.add(Diode("d1", "d", "0"))
        ckt.finalize()
        options = NewtonOptions(max_iterations=1)
        with pytest.raises(ConvergenceError):
            newton_solve(ckt, np.zeros(ckt.system_size()), options=options)

    def test_convergence_error_carries_iterations(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=5.0))
        ckt.add(Resistor("r", "a", "d", 1e3))
        ckt.add(Diode("d1", "d", "0"))
        ckt.finalize()
        try:
            newton_solve(ckt, np.zeros(ckt.system_size()),
                         options=NewtonOptions(max_iterations=1))
        except ConvergenceError as error:
            assert error.iterations == 1
        else:  # pragma: no cover
            pytest.fail("expected ConvergenceError")

    def test_damping_limits_step(self):
        # With a tiny max step the first iterate cannot jump to 5 V.
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=5.0))
        ckt.add(Resistor("r", "a", "0", 1e3))
        ckt.finalize()
        options = NewtonOptions(max_step_v=0.1, max_iterations=500)
        x = newton_solve(ckt, np.zeros(ckt.system_size()), options=options)
        assert x[ckt.node_index("a")] == pytest.approx(5.0, rel=1e-4)


class TestOpResult:
    def test_getitem_ground(self, pdk):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=1.0))
        ckt.add(Resistor("r", "a", "0", 1e3))
        op = OperatingPoint(ckt).run()
        assert op["0"] == 0.0
        assert op["gnd"] == 0.0

    def test_voltages_dict(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=1.0))
        ckt.add(Resistor("r", "a", "0", 1e3))
        op = OperatingPoint(ckt).run()
        assert set(op.voltages) == {"a"}
        assert set(op.branch_currents) == {"v"}
