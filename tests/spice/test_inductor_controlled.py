"""Tests for the inductor and the controlled sources."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.spice import Circuit, OperatingPoint, Transient
from repro.spice.devices import (
    Capacitor, Inductor, Pulse, Resistor, Vccs, Vcvs, VoltageSource,
)


class TestInductorDc:
    def test_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            Inductor("l", "a", "b", 0.0)

    def test_dc_short(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=1.0))
        ckt.add(Inductor("l", "a", "b", 1e-6))
        ckt.add(Resistor("r", "b", "0", 1e3))
        op = OperatingPoint(ckt).run()
        assert op["b"] == pytest.approx(1.0, rel=1e-6)

    def test_dc_branch_current(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=2.0))
        ckt.add(Inductor("l", "a", "b", 1e-6))
        ckt.add(Resistor("r", "b", "0", 1e3))
        op = OperatingPoint(ckt).run()
        idx = ckt.branch_index("l")
        assert op.x[idx] == pytest.approx(2e-3, rel=1e-6)


class TestInductorTransient:
    def test_lr_time_constant(self):
        ckt = Circuit("lr")
        ckt.add(VoltageSource("v", "in", "0", shape=Pulse(
            0, 1, delay=1e-9, rise=1e-12, fall=1e-12, width=50e-9,
            period=200e-9)))
        ckt.add(Inductor("l", "in", "mid", 1e-6))
        ckt.add(Resistor("r", "mid", "0", 1e3))
        res = Transient(ckt, 6e-9).run()  # tau = L/R = 1 ns
        w = res.wave("mid")
        assert w.value_at(2e-9) == pytest.approx(1 - np.exp(-1),
                                                 abs=0.01)

    def test_current_continuity(self):
        # The inductor current must not jump at the stimulus edge.
        ckt = Circuit("lr")
        ckt.add(VoltageSource("v", "in", "0", shape=Pulse(
            0, 1, delay=1e-9, rise=1e-12, fall=1e-12, width=50e-9,
            period=200e-9)))
        ckt.add(Inductor("l", "in", "mid", 1e-6))
        ckt.add(Resistor("r", "mid", "0", 1e3))
        res = Transient(ckt, 3e-9).run()
        i_l = res.branch_current("v")
        # Just after the edge the current is still ~0 (inductor blocks).
        assert abs(i_l.value_at(1.02e-9)) < 5e-5

    def test_lc_oscillation(self):
        # Undriven LC tank rung by a pulse through a resistor: the
        # output oscillates near f0 = 1/(2 pi sqrt(LC)).
        ckt = Circuit("lc")
        ckt.add(VoltageSource("v", "in", "0", shape=Pulse(
            0, 1, delay=0.5e-9, rise=1e-11, fall=1e-11, width=100e-9,
            period=400e-9)))
        ckt.add(Resistor("r", "in", "tank", 10e3))
        ckt.add(Inductor("l", "tank", "0", 1e-6))
        ckt.add(Capacitor("c", "tank", "0", 1e-12))
        res = Transient(ckt, 40e-9).run()
        crossings = res.wave("tank").crossings(0.0)
        assert len(crossings) >= 4, "LC tank failed to ring"


class TestVcvs:
    def test_gain(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("vin", "in", "0", dc=0.1))
        ckt.add(Vcvs("e1", "out", "0", "in", "0", gain=10.0))
        ckt.add(Resistor("rl", "out", "0", 1e3))
        assert OperatingPoint(ckt).run()["out"] == pytest.approx(1.0)

    def test_negative_gain(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("vin", "in", "0", dc=0.5))
        ckt.add(Vcvs("e1", "out", "0", "in", "0", gain=-2.0))
        ckt.add(Resistor("rl", "out", "0", 1e3))
        assert OperatingPoint(ckt).run()["out"] == pytest.approx(-1.0)

    def test_differential_control(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("va", "a", "0", dc=0.7))
        ckt.add(VoltageSource("vb", "b", "0", dc=0.2))
        ckt.add(Vcvs("e1", "out", "0", "a", "b", gain=4.0))
        ckt.add(Resistor("rl", "out", "0", 1e3))
        assert OperatingPoint(ckt).run()["out"] == pytest.approx(2.0)

    def test_ideal_output_impedance(self):
        # Output voltage independent of the load.
        for load in (10.0, 1e6):
            ckt = Circuit("t")
            ckt.add(VoltageSource("vin", "in", "0", dc=0.3))
            ckt.add(Vcvs("e1", "out", "0", "in", "0", gain=3.0))
            ckt.add(Resistor("rl", "out", "0", load))
            assert OperatingPoint(ckt).run()["out"] == \
                pytest.approx(0.9, rel=1e-9)


class TestVccs:
    def test_transconductance(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("vin", "in", "0", dc=0.5))
        ckt.add(Vccs("g1", "0", "out", "in", "0", gm=1e-3))
        ckt.add(Resistor("rl", "out", "0", 1e3))
        # 0.5 mA into 1 kOhm.
        assert OperatingPoint(ckt).run()["out"] == pytest.approx(0.5,
                                                                 rel=1e-6)

    def test_sign_convention_matches_nmos(self):
        # Current pulled out of 'pos': an inverting stage when 'pos'
        # carries the load, like an NMOS drain.
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.0))
        ckt.add(VoltageSource("vin", "in", "0", dc=0.5))
        ckt.add(Resistor("rl", "vdd", "out", 1e3))
        ckt.add(Vccs("g1", "out", "0", "in", "0", gm=1e-3))
        out = OperatingPoint(ckt).run()["out"]
        assert out == pytest.approx(0.5, rel=1e-6)  # 1.0 - 0.5mA*1k


class TestParserSupport:
    def test_inductor_parse(self):
        from repro.netlist import parse_deck
        ckt = parse_deck("l1 a b 2.2u\n")
        assert ckt.device("l1").inductance == pytest.approx(2.2e-6)

    def test_vcvs_parse(self):
        from repro.netlist import parse_deck
        ckt = parse_deck("e1 out 0 in 0 12\n")
        assert ckt.device("e1").gain == 12.0

    def test_vccs_parse(self):
        from repro.netlist import parse_deck
        ckt = parse_deck("g1 out 0 in 0 2m\n")
        assert ckt.device("g1").gm == pytest.approx(2e-3)

    def test_roundtrip_all(self):
        from repro.netlist import parse_deck, write_deck
        deck = ("l1 a b 1u\ne1 c 0 a b 3\ng1 d 0 a b 1m\n"
                "r1 a 0 1k\nr2 b 0 1k\nr3 c 0 1k\nr4 d 0 1k\n"
                "v1 a 0 1\n")
        ckt = parse_deck(deck)
        clone = parse_deck(write_deck(ckt), title_line=True)
        op1 = OperatingPoint(ckt).run()
        op2 = OperatingPoint(clone).run()
        for node in ("a", "b", "c", "d"):
            assert op2[node] == pytest.approx(op1[node], rel=1e-6)
