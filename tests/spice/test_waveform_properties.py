"""Property-based tests for waveform measurements and metric math.

The measurement layer sits between the raw transient solver output and
every number in the paper's tables, so its invariants are pinned
property-style rather than with hand-picked examples:

* threshold crossings are monotone (returned in time order), bracketed
  inside the waveform's time span, and land exactly on the level under
  the waveform's own linear interpolation;
* rise/fall propagation delay is invariant under a rigid time shift of
  both waveforms and under resampling onto any refinement of the
  original grid (linear interpolation is exact on added knots);
* :func:`repro.core.metrics.aggregate` matches numpy's mean/ddof-1
  sigma and is permutation-invariant.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.metrics import METRIC_FIELDS, ShifterMetrics, aggregate
from repro.spice.waveform import (
    BOTH, FALL, RISE, Waveform, propagation_delay,
)

# Unit-scale time grids keep float rounding far below the tolerances.
deltas = st.lists(st.floats(min_value=1e-3, max_value=1.0),
                  min_size=3, max_size=24)
levels = st.floats(min_value=0.05, max_value=0.95)
shifts = st.floats(min_value=-5.0, max_value=5.0)


def _times(delta_list):
    return np.concatenate(([0.0], np.cumsum(delta_list)))


def _wiggly(delta_list, seed):
    """Arbitrary bounded waveform on an irregular grid."""
    rng = np.random.default_rng(seed)
    times = _times(delta_list)
    return Waveform(times, rng.uniform(-1.0, 1.0, size=times.size))


def _ramp(delta_list):
    """Monotone 0-to-1 rise on an irregular grid (unique crossings)."""
    times = _times(delta_list)
    return Waveform(times, np.linspace(0.0, 1.0, times.size))


class TestCrossings:
    @settings(max_examples=60, deadline=None)
    @given(deltas, levels, st.integers(min_value=0, max_value=2**31))
    def test_monotone_bracketed_and_on_level(self, d, frac, seed):
        w = _wiggly(d, seed)
        lo, hi = w.minimum(), w.maximum()
        assume(hi - lo > 1e-6)
        level = lo + frac * (hi - lo)
        found = w.crossings(level, BOTH)
        assert found == sorted(found)
        for t in found:
            assert w.t_start <= t <= w.t_stop
            assert w.value_at(t) == pytest.approx(level, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(deltas, levels, st.integers(min_value=0, max_value=2**31))
    def test_edge_split_partitions_both(self, d, frac, seed):
        w = _wiggly(d, seed)
        lo, hi = w.minimum(), w.maximum()
        assume(hi - lo > 1e-6)
        level = lo + frac * (hi - lo)
        both = w.crossings(level, BOTH)
        rise = w.crossings(level, RISE)
        fall = w.crossings(level, FALL)
        assert sorted(rise + fall) == both

    @settings(max_examples=60, deadline=None)
    @given(deltas, levels)
    def test_monotone_ramp_single_rise(self, d, level):
        w = _ramp(d)
        assert len(w.crossings(level, RISE)) == 1
        assert w.crossings(level, FALL) == []


class TestDelayInvariance:
    @settings(max_examples=60, deadline=None)
    @given(deltas, st.floats(min_value=0.01, max_value=2.0), shifts)
    def test_time_shift(self, d, true_delay, dt):
        w_in = _ramp(d)
        w_out = Waveform(w_in.times + true_delay, w_in.values)
        base = propagation_delay(w_in, w_out, 0.5, 0.5, RISE, RISE)
        assert base == pytest.approx(true_delay, rel=1e-9, abs=1e-12)
        shifted = propagation_delay(
            Waveform(w_in.times + dt, w_in.values),
            Waveform(w_out.times + dt, w_out.values),
            0.5, 0.5, RISE, RISE)
        assert shifted == pytest.approx(base, rel=1e-9, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(deltas, st.floats(min_value=0.01, max_value=2.0),
           st.lists(st.floats(min_value=0.0, max_value=1.0),
                    min_size=1, max_size=16))
    def test_refined_resampling(self, d, true_delay, fracs):
        """Adding knots to a piecewise-linear waveform changes nothing."""
        w_in = _ramp(d)
        w_out = Waveform(w_in.times + true_delay, w_in.values)
        base = propagation_delay(w_in, w_out, 0.5, 0.5, RISE, RISE)

        def refine(w):
            span = w.t_stop - w.t_start
            extra = w.t_start + span * np.asarray(fracs)
            grid = np.union1d(w.times, extra)
            return w.resampled(grid)

        refined = propagation_delay(refine(w_in), refine(w_out),
                                    0.5, 0.5, RISE, RISE)
        assert refined == pytest.approx(base, rel=1e-9, abs=1e-9)


def _metrics(values):
    return ShifterMetrics(**dict(zip(METRIC_FIELDS, values)))


metric_values = st.lists(
    st.lists(st.floats(min_value=1e-12, max_value=1e-3),
             min_size=6, max_size=6),
    min_size=2, max_size=12)


class TestMetricAggregation:
    @settings(max_examples=40, deadline=None)
    @given(metric_values)
    def test_matches_numpy(self, rows):
        stats = aggregate([_metrics(r) for r in rows])
        arr = np.asarray(rows)
        for i, name in enumerate(METRIC_FIELDS):
            assert getattr(stats.mean, name) == pytest.approx(
                float(np.mean(arr[:, i])), rel=1e-12)
            assert getattr(stats.std, name) == pytest.approx(
                float(np.std(arr[:, i], ddof=1)), rel=1e-9, abs=1e-30)

    @settings(max_examples=40, deadline=None)
    @given(metric_values, st.randoms(use_true_random=False))
    def test_permutation_invariant(self, rows, rnd):
        samples = [_metrics(r) for r in rows]
        shuffled = list(samples)
        rnd.shuffle(shuffled)
        a, b = aggregate(samples), aggregate(shuffled)
        for name in METRIC_FIELDS:
            assert getattr(a.mean, name) == pytest.approx(
                getattr(b.mean, name), rel=1e-12)
            assert getattr(a.std, name) == pytest.approx(
                getattr(b.std, name), rel=1e-9, abs=1e-30)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=1e-12, max_value=1e-3),
                    min_size=6, max_size=6))
    def test_ratio_to_self_is_unity(self, values):
        m = _metrics(values)
        assert all(r == pytest.approx(1.0, rel=1e-12)
                   for r in m.ratio_to(m).values())
