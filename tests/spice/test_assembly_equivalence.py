"""Cached/vectorized assembly must match the reference bit for bit.

The throughput path (:mod:`repro.spice.assembly`) caches the linear
part of the MNA matrix and re-stamps only nonlinear devices, with the
MOSFET group evaluated in one vectorized pass. These tests pin its
contract: across every solve regime the solver uses — DC, the
gmin-stepping and source-stepping homotopies, and both transient
integrators with committed capacitor state — the assembled matrix and
RHS are *exactly* equal (``==`` on every float, no tolerance) to the
legacy full re-stamp in :func:`repro.spice.mna.assemble`.
"""

import numpy as np
import pytest

from repro.core.testbench import InputStep, build_testbench
from repro.pdk import Pdk
from repro.spice import mna
from repro.spice.assembly import SolverWorkspace
from repro.spice.devices import Resistor
from repro.spice.integration import (
    BACKWARD_EULER, TRAPEZOIDAL, IntegratorState,
)

STEPS = [InputStep(0.2e-9, True), InputStep(1.0e-9, False)]

REGIMES = [
    pytest.param(None, 1e-12, 1.0, id="dc"),
    pytest.param(None, 1e-6, 1.0, id="gmin-stepped"),
    pytest.param(None, 1e-12, 0.3, id="source-stepped"),
    pytest.param(IntegratorState(BACKWARD_EULER, 1e-11), 1e-12, 1.0,
                 id="transient-be"),
    pytest.param(IntegratorState(TRAPEZOIDAL, 2e-12), 1e-12, 1.0,
                 id="transient-trap"),
]


def _bench():
    circuit, _ = build_testbench(Pdk(), "sstvs", 0.8, 1.2, steps=STEPS)
    return circuit


def _iterates(size: int, count: int = 3):
    rng = np.random.default_rng(20080310)
    return [rng.uniform(-0.2, 1.4, size) for _ in range(count)]


def _reference(circuit, x, time, integrator, gmin, scale):
    system = mna.MnaSystem(circuit.system_size())
    mna.assemble(circuit, x, system, time=time, integrator=integrator,
                 gmin=gmin, source_scale=scale)
    return system.matrix.copy(), system.rhs.copy()


def _assert_same(workspace, matrix, rhs, context):
    assert np.array_equal(workspace.system.matrix, matrix), context
    assert np.array_equal(workspace.system.rhs, rhs), context


@pytest.mark.parametrize("integrator, gmin, scale", REGIMES)
def test_workspace_matches_reference_exactly(integrator, gmin, scale):
    circuit = _bench()
    workspace = SolverWorkspace(circuit)
    assert workspace.plan.supported, "bench should take the fast path"
    time = 0.5e-9 if integrator is not None else 0.0
    iterates = _iterates(workspace.size)
    if integrator is not None:
        for device in circuit:
            device.init_state(iterates[0])
        workspace.init_state(iterates[0])
    workspace.begin_solve(time, integrator, gmin, scale)
    for x in iterates:
        matrix, rhs = _reference(circuit, x, time, integrator, gmin,
                                 scale)
        workspace.assemble_iteration(x)
        _assert_same(workspace, matrix, rhs, f"iterate {x[:3]}")


@pytest.mark.parametrize("method", [BACKWARD_EULER, TRAPEZOIDAL])
def test_state_update_keeps_exact_parity(method):
    """Vectorized capacitor state tracks the scalar update bit for bit."""
    circuit = _bench()
    workspace = SolverWorkspace(circuit)
    integrator = IntegratorState(method, 5e-12)
    iterates = _iterates(workspace.size, count=4)
    for device in circuit:
        device.init_state(iterates[0])
    workspace.init_state(iterates[0])
    time = 0.0
    for x in iterates[1:]:
        time += integrator.dt
        workspace.begin_solve(time, integrator, 1e-12, 1.0)
        matrix, rhs = _reference(circuit, x, time, integrator, 1e-12,
                                 1.0)
        workspace.assemble_iteration(x)
        _assert_same(workspace, matrix, rhs, f"t={time}")
        for device in circuit:
            device.update_state(x, integrator)
        workspace.update_state(x, integrator)


def test_integrator_key_change_reuses_nothing_stale():
    """Switching dt/method/gmin between solves stays exact."""
    circuit = _bench()
    workspace = SolverWorkspace(circuit)
    x = _iterates(workspace.size, count=1)[0]
    for device in circuit:
        device.init_state(x)
    workspace.init_state(x)
    regimes = [(None, 1e-12, 1.0), (None, 1e-6, 1.0),
               (IntegratorState(TRAPEZOIDAL, 1e-12), 1e-12, 1.0),
               (IntegratorState(TRAPEZOIDAL, 4e-12), 1e-12, 1.0),
               (IntegratorState(BACKWARD_EULER, 4e-12), 1e-12, 1.0),
               (None, 1e-12, 1.0)]  # revisit the first (cached) key
    for integrator, gmin, scale in regimes:
        workspace.begin_solve(0.3e-9, integrator, gmin, scale)
        matrix, rhs = _reference(circuit, x, 0.3e-9, integrator, gmin,
                                 scale)
        workspace.assemble_iteration(x)
        _assert_same(workspace, matrix, rhs,
                     f"{integrator} gmin={gmin} scale={scale}")


class _OddResistor(Resistor):
    """A subclass the fast path has never heard of."""


def test_unknown_device_subclass_falls_back_to_reference():
    circuit = _bench()
    circuit.unfreeze()
    circuit.add(_OddResistor("rodd", "out", "0", 1e6))
    circuit.finalize()
    workspace = SolverWorkspace(circuit)
    assert not workspace.plan.supported
    x = _iterates(workspace.size, count=1)[0]
    workspace.begin_solve(0.0, None, 1e-12, 1.0)
    matrix, rhs = _reference(circuit, x, 0.0, None, 1e-12, 1.0)
    workspace.assemble_iteration(x)
    _assert_same(workspace, matrix, rhs, "fallback")


def test_scalar_and_vector_mosfet_evaluate_identically():
    """The shared EKV kernel gives the same floats per device."""
    circuit = _bench()
    _, _, mosfets = circuit.stamp_partition()
    assert mosfets, "bench has MOSFETs"
    workspace = SolverWorkspace(circuit)
    x = _iterates(workspace.size, count=1)[0]
    x_aug = np.append(x, 0.0)
    group = workspace.plan.mosfet_group
    from repro.spice.devices.mosfet import ekv_evaluate
    vd = x_aug[group.d]
    vg = x_aug[group.g]
    vs = x_aug[group.s]
    vb = x_aug[group.b]
    vec = ekv_evaluate(group.sign, group.vto, group.n_slope, group.ut,
                       group.gamma, group.phi, group.eta_dibl,
                       group.lambda_clm, group.ispec, vd, vg, vs, vb)
    for k, device in enumerate(mosfets):
        scalar = device.evaluate(float(vd[k]), float(vg[k]),
                                 float(vs[k]), float(vb[k]))
        for field_index, value in enumerate(scalar):
            assert value == vec[field_index][k]
