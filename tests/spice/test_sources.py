"""Tests for independent sources and waveform shapes."""

import pytest

from repro.errors import ModelError
from repro.spice import Circuit, OperatingPoint
from repro.spice.devices import (
    CurrentSource, Dc, Pulse, Pwl, Resistor, Sin, VoltageSource,
)


class TestDc:
    def test_constant(self):
        shape = Dc(1.5)
        assert shape.value(0.0) == 1.5
        assert shape.value(1e-6) == 1.5
        assert shape.breakpoints(1.0) == []


class TestPulse:
    def _pulse(self, **kw):
        defaults = dict(v1=0.0, v2=1.0, delay=1e-9, rise=1e-10,
                        fall=2e-10, width=1e-9, period=4e-9)
        defaults.update(kw)
        return Pulse(**defaults)

    def test_before_delay(self):
        assert self._pulse().value(0.5e-9) == 0.0

    def test_plateau(self):
        assert self._pulse().value(1.5e-9) == 1.0

    def test_rising_interpolation(self):
        pulse = self._pulse()
        assert pulse.value(1e-9 + 0.5e-10) == pytest.approx(0.5)

    def test_falling_interpolation(self):
        pulse = self._pulse()
        t = 1e-9 + 1e-10 + 1e-9 + 1e-10  # halfway down the fall
        assert pulse.value(t) == pytest.approx(0.5)

    def test_periodicity(self):
        pulse = self._pulse()
        assert pulse.value(1.5e-9) == pulse.value(1.5e-9 + 4e-9)

    def test_breakpoints_cover_edges(self):
        points = self._pulse().breakpoints(3e-9)
        assert 1e-9 in points
        assert pytest.approx(1.1e-9) in points

    def test_zero_rise_rejected(self):
        with pytest.raises(ModelError):
            self._pulse(rise=0.0)

    def test_period_shorter_than_shape_rejected(self):
        with pytest.raises(ModelError):
            self._pulse(period=0.5e-9)

    def test_default_period(self):
        pulse = Pulse(0, 1, width=1e-9)
        assert pulse.period >= pulse.rise + pulse.width + pulse.fall


class TestPwl:
    def test_interpolation(self):
        pwl = Pwl([(0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5)])
        assert pwl.value(0.5e-9) == pytest.approx(0.5)
        assert pwl.value(1.5e-9) == pytest.approx(0.75)

    def test_clamping_at_ends(self):
        pwl = Pwl([(1e-9, 0.2), (2e-9, 0.9)])
        assert pwl.value(0.0) == 0.2
        assert pwl.value(5e-9) == 0.9

    def test_nonmonotonic_rejected(self):
        with pytest.raises(ModelError):
            Pwl([(0.0, 0.0), (1e-9, 1.0), (1e-9, 0.0)])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Pwl([])

    def test_breakpoints_limited_to_window(self):
        pwl = Pwl([(0.0, 0.0), (1e-9, 1.0), (9e-9, 0.0)])
        assert pwl.breakpoints(2e-9) == [0.0, 1e-9]


class TestSin:
    def test_offset_before_delay(self):
        sin = Sin(0.5, 0.2, 1e9, delay=1e-9)
        assert sin.value(0.5e-9) == 0.5

    def test_quarter_period_peak(self):
        sin = Sin(0.0, 1.0, 1e9)
        assert sin.value(0.25e-9) == pytest.approx(1.0, abs=1e-9)

    def test_damping_decays(self):
        sin = Sin(0.0, 1.0, 1e9, damping=1e9)
        assert abs(sin.value(1.25e-9)) < 1.0

    def test_bad_frequency(self):
        with pytest.raises(ModelError):
            Sin(0.0, 1.0, 0.0)


class TestVoltageSource:
    def test_branch_current_sign_convention(self):
        # Sourcing supply: branch current (pos -> neg internal) is
        # negative; supply_current is positive.
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=1.0))
        ckt.add(Resistor("r", "a", "0", 1e3))
        op = OperatingPoint(ckt).run()
        assert op.current("v") < 0
        assert op.supply_current("v") == pytest.approx(1e-3, rel=1e-6)

    def test_series_sources(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", "0", dc=1.0))
        ckt.add(VoltageSource("v2", "b", "a", dc=0.5))
        ckt.add(Resistor("r", "b", "0", 1e3))
        op = OperatingPoint(ckt).run()
        assert op["b"] == pytest.approx(1.5, rel=1e-9)

    def test_default_zero_volts(self):
        source = VoltageSource("v", "a", "0")
        assert source.value(0.0) == 0.0


class TestCurrentSource:
    def test_injects_into_negative_node(self):
        ckt = Circuit("t")
        # 1 mA pulled from ground into node a through 1k to ground.
        ckt.add(CurrentSource("i", "0", "a", dc=1e-3))
        ckt.add(Resistor("r", "a", "0", 1e3))
        op = OperatingPoint(ckt).run()
        assert op["a"] == pytest.approx(1.0, rel=1e-6)

    def test_direction_flip(self):
        ckt = Circuit("t")
        ckt.add(CurrentSource("i", "a", "0", dc=1e-3))
        ckt.add(Resistor("r", "a", "0", 1e3))
        op = OperatingPoint(ckt).run()
        assert op["a"] == pytest.approx(-1.0, rel=1e-6)
