"""Tests for the DC sweep analysis."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.spice import Circuit, DcSweep
from repro.spice.devices import Capacitor, Dc, Resistor, VoltageSource


def divider():
    ckt = Circuit("t")
    ckt.add(VoltageSource("vin", "a", "0", dc=0.0))
    ckt.add(Resistor("r1", "a", "m", 1e3))
    ckt.add(Resistor("r2", "m", "0", 1e3))
    return ckt


class TestDcSweep:
    def test_linear_divider_sweep(self):
        result = DcSweep(divider(), "vin", np.linspace(0, 2, 5)).run()
        np.testing.assert_allclose(result.voltages("m"),
                                   np.linspace(0, 1, 5), rtol=1e-6)

    def test_currents_accessor(self):
        result = DcSweep(divider(), "vin", [2.0]).run()
        assert result.currents("vin")[0] == pytest.approx(-1e-3, rel=1e-6)

    def test_len(self):
        result = DcSweep(divider(), "vin", [0.0, 1.0]).run()
        assert len(result) == 2

    def test_source_shape_restored(self):
        ckt = divider()
        source = ckt.device("vin")
        original = source.shape
        DcSweep(ckt, "vin", [0.5, 1.0]).run()
        assert source.shape is original

    def test_empty_values_rejected(self):
        with pytest.raises(AnalysisError):
            DcSweep(divider(), "vin", [])

    def test_non_source_rejected(self):
        with pytest.raises(AnalysisError):
            DcSweep(divider(), "r1", [1.0]).run()

    def test_inverter_vtc_monotone(self, pdk):
        from repro.cells import add_inverter
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0))
        add_inverter(ckt, pdk, "inv", "in", "out", "vdd")
        sweep = DcSweep(ckt, "vin", np.linspace(0, 1.2, 25)).run()
        vout = sweep.voltages("out")
        assert vout[0] == pytest.approx(1.2, abs=0.01)
        assert vout[-1] == pytest.approx(0.0, abs=0.01)
        assert np.all(np.diff(vout) <= 1e-6)  # monotone falling

    def test_inverter_switching_threshold(self, pdk):
        from repro.cells import add_inverter
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0))
        add_inverter(ckt, pdk, "inv", "in", "out", "vdd")
        vin = np.linspace(0, 1.2, 121)
        sweep = DcSweep(ckt, "vin", vin).run()
        vout = sweep.voltages("out")
        crossing = vin[np.argmin(np.abs(vout - vin))]
        # Switching threshold near midrail for a 2:1 P:N inverter.
        assert 0.4 < crossing < 0.8
