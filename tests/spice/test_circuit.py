"""Tests for the circuit data model."""

import pytest

from repro.errors import CircuitError
from repro.spice import Circuit
from repro.spice.circuit import canonical_node
from repro.spice.devices import Capacitor, Resistor, VoltageSource
from repro.spice.mna import GROUND


class TestCanonicalNode:
    def test_ground_aliases(self):
        for name in ("0", "gnd", "GND", "gnd!", "VSS!"):
            assert canonical_node(name) == "0"

    def test_case_folding(self):
        assert canonical_node("OUT") == "out"

    def test_whitespace_stripped(self):
        assert canonical_node("  out ") == "out"

    def test_empty_raises(self):
        with pytest.raises(CircuitError):
            canonical_node("  ")


class TestCircuitConstruction:
    def test_add_and_lookup(self, empty_circuit):
        r = Resistor("R1", "a", "b", 1e3)
        empty_circuit.add(r)
        assert empty_circuit.device("r1") is r
        assert "R1" in empty_circuit
        assert len(empty_circuit) == 1

    def test_duplicate_name_rejected(self, empty_circuit):
        empty_circuit.add(Resistor("r1", "a", "b", 1.0))
        with pytest.raises(CircuitError, match="duplicate"):
            empty_circuit.add(Resistor("R1", "c", "d", 1.0))

    def test_unknown_device_lookup(self, empty_circuit):
        with pytest.raises(CircuitError, match="no device"):
            empty_circuit.device("nope")

    def test_remove(self, empty_circuit):
        empty_circuit.add(Resistor("r1", "a", "b", 1.0))
        empty_circuit.remove("r1")
        assert "r1" not in empty_circuit

    def test_remove_missing_raises(self, empty_circuit):
        with pytest.raises(CircuitError):
            empty_circuit.remove("ghost")

    def test_node_names_canonicalized_on_add(self, empty_circuit):
        empty_circuit.add(Resistor("r1", "A", "GND", 1.0))
        device = empty_circuit.device("r1")
        assert device.nodes == ["a", "0"]

    def test_expansion_devices_added(self, empty_circuit, nmos_params):
        from repro.spice.devices import Mosfet
        empty_circuit.add(Mosfet("m1", "d", "g", "s", "b", nmos_params,
                                 0.2e-6, 0.1e-6))
        # The MOSFET expands into 5 caps (no gate_leak in this card).
        assert len(empty_circuit) == 6
        assert "m1#cgs" in empty_circuit


class TestFinalization:
    def _build(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "in", "0", dc=1.0))
        ckt.add(Resistor("r1", "in", "out", 1e3))
        ckt.add(Capacitor("c1", "out", "0", 1e-12))
        return ckt

    def test_node_indices_assigned(self):
        ckt = self._build()
        ckt.finalize()
        assert ckt.node_count() == 2
        assert ckt.node_index("0") == GROUND
        assert 0 <= ckt.node_index("in") < 2
        assert 0 <= ckt.node_index("out") < 2

    def test_system_size_includes_branches(self):
        ckt = self._build()
        # 2 nodes + 1 voltage-source branch current.
        assert ckt.system_size() == 3

    def test_branch_index(self):
        ckt = self._build()
        assert ckt.branch_index("v1") == 2

    def test_branch_index_missing(self):
        ckt = self._build()
        with pytest.raises(CircuitError):
            ckt.branch_index("r1")

    def test_unknown_node_raises(self):
        ckt = self._build()
        with pytest.raises(CircuitError, match="unknown node"):
            ckt.node_index("phantom")

    def test_frozen_after_finalize(self):
        ckt = self._build()
        ckt.finalize()
        with pytest.raises(CircuitError, match="finalized"):
            ckt.add(Resistor("r2", "x", "y", 1.0))

    def test_unfreeze_allows_edits(self):
        ckt = self._build()
        ckt.finalize()
        ckt.unfreeze()
        ckt.add(Resistor("r2", "x", "y", 1.0))
        assert "r2" in ckt

    def test_finalize_idempotent(self):
        ckt = self._build()
        ckt.finalize()
        size = ckt.system_size()
        ckt.finalize()
        assert ckt.system_size() == size

    def test_node_names_in_index_order(self):
        ckt = self._build()
        names = ckt.node_names()
        assert [ckt.node_index(n) for n in names] == list(range(len(names)))

    def test_summary_mentions_counts(self):
        ckt = self._build()
        text = ckt.summary()
        assert "3 devices" in text
        assert "2 nodes" in text


class TestQueries:
    def test_nonlinear_devices(self, nmos_params):
        from repro.spice.devices import Mosfet
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        ckt.add(Mosfet("m1", "d", "g", "s", "0", nmos_params,
                       0.2e-6, 0.1e-6))
        nonlinear = ckt.nonlinear_devices()
        assert [d.name for d in nonlinear] == ["m1"]

    def test_breakpoints_sorted_unique(self):
        from repro.spice.devices import Pulse
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", "0", shape=Pulse(
            0, 1, delay=1e-9, rise=1e-10, fall=1e-10, width=1e-9,
            period=10e-9)))
        pts = ckt.breakpoints(5e-9)
        assert pts == sorted(set(pts))
        assert pts[0] == 0.0
        assert pts[-1] == 5e-9

    def test_devices_of_type(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        ckt.add(Capacitor("c1", "a", "0", 1e-12))
        assert len(ckt.devices_of_type(Resistor)) == 1
        assert len(ckt.devices_of_type(Capacitor)) == 1
