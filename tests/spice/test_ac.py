"""Tests for the small-signal AC analysis."""

import math

import numpy as np
import pytest

from repro.errors import AnalysisError, MeasurementError
from repro.spice import (
    AcAnalysis, AcStimulus, Circuit, log_frequencies,
)
from repro.spice.devices import (
    Capacitor, Inductor, Resistor, Vccs, VoltageSource,
)


def lowpass(r=1e3, c=1e-9):
    ckt = Circuit("lp")
    ckt.add(VoltageSource("vin", "in", "0", dc=0.0))
    ckt.add(Resistor("r", "in", "out", r))
    ckt.add(Capacitor("c", "out", "0", c))
    return ckt


class TestLogFrequencies:
    def test_endpoints(self):
        freqs = log_frequencies(1e3, 1e6, 10)
        assert freqs[0] == pytest.approx(1e3)
        assert freqs[-1] == pytest.approx(1e6)

    def test_points_per_decade(self):
        freqs = log_frequencies(1e3, 1e6, 10)
        assert freqs.size == 31

    def test_bad_range(self):
        with pytest.raises(AnalysisError):
            log_frequencies(1e6, 1e3)
        with pytest.raises(AnalysisError):
            log_frequencies(0.0, 1e3)


class TestRcLowpass:
    @pytest.fixture(scope="class")
    def result(self):
        return AcAnalysis(lowpass(), [AcStimulus("vin")],
                          log_frequencies(1e3, 1e8, 20)).run()

    def test_dc_gain_unity(self, result):
        assert result.magnitude("out")[0] == pytest.approx(1.0, rel=1e-3)

    def test_3db_bandwidth(self, result):
        expected = 1.0 / (2 * math.pi * 1e3 * 1e-9)
        assert result.bandwidth_3db("out") == pytest.approx(expected,
                                                            rel=0.01)

    def test_rolloff_20db_per_decade(self, result):
        db = result.magnitude_db("out")
        freqs = result.frequencies
        hi = np.searchsorted(freqs, 1e7)
        hi10 = np.searchsorted(freqs, 1e8) - 1
        slope = (db[hi10] - db[hi]) / math.log10(freqs[hi10] / freqs[hi])
        assert slope == pytest.approx(-20.0, abs=1.0)

    def test_phase_approaches_minus_90(self, result):
        assert result.phase_deg("out")[-1] == pytest.approx(-90.0,
                                                            abs=3.0)

    def test_gain_at_interpolates(self, result):
        f3 = result.bandwidth_3db("out")
        assert result.gain_at("out", f3) == pytest.approx(
            1 / math.sqrt(2), rel=0.02)

    def test_ground_phasor_zero(self, result):
        assert np.all(result.phasor("0") == 0)


class TestRlcResonance:
    def test_series_rlc_peak(self):
        # f0 = 1/(2 pi sqrt(LC)) = 5.03 MHz for 1 uH / 1 nF.
        ckt = Circuit("rlc")
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0))
        ckt.add(Resistor("r", "in", "a", 10.0))
        ckt.add(Inductor("l", "a", "out", 1e-6))
        ckt.add(Capacitor("c", "out", "0", 1e-9))
        result = AcAnalysis(ckt, [AcStimulus("vin")],
                            log_frequencies(1e5, 1e8, 60)).run()
        mag = result.magnitude("out")
        f_peak = result.frequencies[int(np.argmax(mag))]
        f0 = 1.0 / (2 * math.pi * math.sqrt(1e-6 * 1e-9))
        assert f_peak == pytest.approx(f0, rel=0.05)
        assert mag.max() > 3.0  # resonant peaking (Q = ~31)


class TestActiveCircuits:
    def test_vccs_amplifier_gain(self):
        # gm = 4 mS into 1 kOhm -> gain 4.
        ckt = Circuit("amp")
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0))
        ckt.add(Vccs("g1", "out", "0", "in", "0", gm=4e-3))
        ckt.add(Resistor("rl", "out", "0", 1e3))
        result = AcAnalysis(ckt, [AcStimulus("vin")],
                            log_frequencies(1e3, 1e6, 5)).run()
        # Current pulled OUT of 'out': inverting gain of magnitude 4.
        assert result.magnitude("out")[0] == pytest.approx(4.0, rel=1e-3)
        assert abs(result.phase_deg("out")[0]) == pytest.approx(180.0,
                                                                abs=1.0)

    def test_mos_common_source_gain(self, pdk):
        # NMOS common-source stage biased near saturation.
        ckt = Circuit("cs")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        ckt.add(VoltageSource("vin", "g", "0", dc=0.55))
        ckt.add(Resistor("rd", "vdd", "d", 20e3))
        ckt.add(pdk.mosfet("m1", "d", "g", "0", "0", "n", 1e-6))
        result = AcAnalysis(ckt, [AcStimulus("vin")],
                            log_frequencies(1e3, 1e6, 5)).run()
        gain = result.magnitude("d")[0]
        assert gain > 2.0, "common-source stage should amplify"

    def test_unity_gain_frequency(self):
        ckt = Circuit("amp")
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0))
        ckt.add(Vccs("g1", "out", "0", "in", "0", gm=10e-3))
        ckt.add(Resistor("rl", "out", "0", 1e3))
        ckt.add(Capacitor("cl", "out", "0", 1e-9))
        result = AcAnalysis(ckt, [AcStimulus("vin")],
                            log_frequencies(1e4, 1e9, 20)).run()
        # f_u ~ gm / (2 pi C) = 1.59 MHz
        expected = 10e-3 / (2 * math.pi * 1e-9)
        assert result.unity_gain_frequency("out") == pytest.approx(
            expected, rel=0.05)


class TestValidation:
    def test_needs_stimulus(self):
        with pytest.raises(AnalysisError):
            AcAnalysis(lowpass(), [], log_frequencies(1e3, 1e6))

    def test_positive_frequencies(self):
        with pytest.raises(AnalysisError):
            AcAnalysis(lowpass(), [AcStimulus("vin")],
                       np.asarray([0.0, 1e3]))

    def test_no_3db_raises(self):
        ckt = Circuit("flat")
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0))
        ckt.add(Resistor("r", "in", "out", 1.0))
        ckt.add(Resistor("r2", "out", "0", 1e9))
        result = AcAnalysis(ckt, [AcStimulus("vin")],
                            log_frequencies(1e3, 1e6, 5)).run()
        with pytest.raises(MeasurementError):
            result.bandwidth_3db("out")
