"""Differential harness: the batched SPMD backend vs the serial solver.

The tolerance contract pinned here (and documented in
:mod:`repro.spice.batch`):

* **Fixed-order path — 0 ULP.** When every lane takes the same
  decisions it would take alone (the normal case: per-lane adaptive
  stepping replicates the serial state machine exactly), batched
  results are *bitwise identical* to the serial engine — times,
  states, iteration counts, and failure messages. Asserted with
  ``np.array_equal`` / ``==``, no tolerance.
* **Negative control.** Bitwise equality is not automatic for "the
  same maths" — a genuinely reordered float reduction lands on
  different bits. The control reorders the MOSFET stamp accumulation
  and shows the resulting solve exceeds 0 ULP, proving the bound above
  is tight (the backend earns it by preserving evaluation order, not
  by luck).

Plus the containment properties the batched Newton claims:

* **Lane masking** (hypothesis): running any subset of lanes yields
  bitwise the same per-lane answers as running all lanes — membership
  of the batch never perturbs a lane.
* **Fault injection**: one non-finite / diverging lane is evicted with
  the exact serial error message while its neighbors' waveforms stay
  bitwise identical to a clean run.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.characterize import quick_delays, quick_delays_batch
from repro.core.testbench import InputStep, build_testbench
from repro.errors import AnalysisError, ConvergenceError
from repro.pdk import Pdk
from repro.pdk.variation import VariationSpec, VariedPdk
from repro.spice.assembly import SolverWorkspace
from repro.spice.batch import (
    BatchTransient, BatchUnsupported, LaneGroup, _solve_stack,
)
from repro.spice.devices import Dc, Resistor
from repro.spice.newton import NewtonOptions, newton_solve, solve_dc
from repro.spice.transient import Transient, TransientOptions

pytestmark = pytest.mark.batch

STEPS = [InputStep(0.2e-9, True), InputStep(1.0e-9, False)]
T_STOP = 1.5e-9
N_LANES = 4


def _options() -> TransientOptions:
    return TransientOptions(h_max=50e-12)


def _lane_circuit(k: int, seed: int = 7):
    """One MC-style lane: same topology, seeded per-lane W/L/Vt draws."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, k]))
    pdk = VariedPdk(rng, VariationSpec())
    circuit, _ = build_testbench(pdk, "sstvs", 0.8, 1.2, steps=STEPS)
    return circuit


def _lane_circuits(n: int = N_LANES, seed: int = 7):
    return [_lane_circuit(k, seed) for k in range(n)]


def max_ulp_delta(a, b) -> int:
    """Largest per-element distance in representable-float steps."""
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    ia, ib = a.view(np.int64), b.view(np.int64)
    # Map the sign-magnitude float bits onto a monotone integer line.
    mask = np.int64(0x7FFFFFFFFFFFFFFF)
    ia = ia ^ ((ia >> 63) & mask)
    ib = ib ^ ((ib >> 63) & mask)
    return int(np.max(np.abs(ia - ib), initial=0))


@pytest.fixture(scope="module")
def serial_results():
    """Per-lane serial runs — the ground truth for every comparison."""
    out = []
    for k in range(N_LANES):
        out.append(Transient(_lane_circuit(k), T_STOP, _options()).run())
    return out


@pytest.fixture(scope="module")
def batched_result():
    return BatchTransient(_lane_circuits(), T_STOP, _options()).run()


# -- structural gate ------------------------------------------------------

class TestLaneGroupStructure:
    def test_rejects_empty_group(self):
        with pytest.raises(BatchUnsupported, match="at least one"):
            LaneGroup([])

    def test_rejects_mixed_topology(self):
        big = _lane_circuit(0)
        small, _ = build_testbench(Pdk(), "inverter", 0.8, 1.2,
                                   steps=STEPS)
        with pytest.raises(BatchUnsupported,
                           match="topology|MNA shape|stamp layout"):
            LaneGroup([big, small])

    def test_rejects_unsupported_plan(self):
        class OddResistor(Resistor):
            """A subclass the fast assembly has never heard of."""

        circuit = _lane_circuit(0)
        circuit.unfreeze()
        circuit.add(OddResistor("rodd", "out", "0", 1e6))
        circuit.finalize()
        with pytest.raises(BatchUnsupported, match="unsupported"):
            LaneGroup([_lane_circuit(0), circuit])

    def test_parameter_variation_is_allowed(self):
        group = LaneGroup(_lane_circuits(3))
        assert group.n_lanes == 3
        assert group.size == SolverWorkspace(_lane_circuit(0)).size
        # The lanes really do differ (else the harness proves nothing).
        p0, p1 = group._mos_params[8][0], group._mos_params[8][1]
        assert not np.array_equal(p0, p1)

    def test_transient_rejects_bad_t_stop(self):
        with pytest.raises(AnalysisError, match="> 0"):
            BatchTransient(_lane_circuits(2), 0.0)
        with pytest.raises(AnalysisError, match="2 lanes"):
            BatchTransient(_lane_circuits(2), [1e-9, 1e-9, 1e-9])


# -- the core differential claim: bitwise on the fixed-order path ---------

class TestBitwiseTransientParity:
    def test_every_lane_completes(self, batched_result):
        assert batched_result.n_lanes == N_LANES
        assert all(batched_result.ok(k) for k in range(N_LANES))
        assert batched_result.errors == [None] * N_LANES

    def test_times_bitwise_equal(self, batched_result, serial_results):
        for k in range(N_LANES):
            lane = batched_result.lane(k)
            assert np.array_equal(lane.times, serial_results[k].times), \
                f"lane {k} visited different time points"

    def test_states_bitwise_equal(self, batched_result, serial_results):
        for k in range(N_LANES):
            lane = batched_result.lane(k)
            serial = serial_results[k]
            assert lane._states.shape == serial._states.shape
            assert np.array_equal(lane._states, serial._states), \
                f"lane {k} states differ from serial"

    def test_zero_ulp_bound_is_enforced(self, batched_result,
                                        serial_results):
        # The documented tolerance bound on the fixed-order path.
        worst = max(
            max_ulp_delta(batched_result.lane(k)._states,
                          serial_results[k]._states)
            for k in range(N_LANES))
        assert worst == 0

    def test_step_reports_match(self, batched_result, serial_results):
        for k in range(N_LANES):
            b = batched_result.lane(k).report
            s = serial_results[k].report
            assert (b.steps_accepted, b.newton_failures,
                    b.steps_rejected_dv, b.total_halvings) == \
                   (s.steps_accepted, s.newton_failures,
                    s.steps_rejected_dv, s.total_halvings), f"lane {k}"


class TestBitwiseDcParity:
    def test_solve_dc_matches_serial_ladder(self):
        # The sstvs bench DC needs the retry ladder (plain Newton from
        # zero exhausts its budget), so this pins the eviction path:
        # every lane falls back to the serial ladder and lands bitwise
        # on the serial answer.
        circuits = _lane_circuits(3)
        group = LaneGroup(circuits)
        X, reports, errors = group.solve_dc()
        assert errors == [None, None, None]
        for k in range(3):
            x_serial = solve_dc(_lane_circuit(k))
            assert np.array_equal(X[k], x_serial), f"lane {k}"

    def test_batched_rung_matches_serial_from_good_seed(self):
        # From a seed near the operating point the plain batched rung
        # converges without eviction — bitwise the serial newton_solve.
        circuits = _lane_circuits(3)
        seeds = np.stack([solve_dc(_lane_circuit(k)) for k in range(3)])
        group = LaneGroup(circuits)
        res = group.newton(np.arange(3), seeds, times=[0.0] * 3,
                           integrators=[None] * 3)
        assert res.converged.all()
        for k in range(3):
            x_serial = newton_solve(_lane_circuit(k), seeds[k].copy())
            assert np.array_equal(res.x[k], x_serial), f"lane {k}"

    def test_exhaustion_message_matches_serial(self):
        opts = NewtonOptions(max_iterations=2)
        circuits = _lane_circuits(2)
        group = LaneGroup(circuits)
        res = group.newton(np.arange(2), np.zeros((2, group.size)),
                           times=[0.0, 0.0], integrators=[None, None],
                           options=opts)
        assert not res.converged.any()
        for k in range(2):
            with pytest.raises(ConvergenceError) as err:
                newton_solve(_lane_circuit(k), np.zeros(group.size),
                             options=opts)
            # String equality implies the last-dV float matched too.
            assert res.errors[k] == str(err.value)
            assert res.iterations[k] == 2


class TestQuickDelaysParity:
    def test_batched_grid_points_bitwise_equal_serial(self):
        pdk = Pdk()
        points = [(0.8, 1.2), (1.0, 1.0), (1.2, 0.8)]
        lanes = [(pdk, "sstvs", vddi, vddo, 3.0e-9, 2.5e-9, None)
                 for vddi, vddo in points]
        batched = quick_delays_batch(lanes)
        for (vddi, vddo), q in zip(points, batched):
            serial = quick_delays(pdk, "sstvs", vddi, vddo)
            # Frozen-dataclass equality: delays bit-equal, same flag.
            assert q == serial, f"({vddi}, {vddo})"


# -- negative control: the 0-ULP bound is tight ---------------------------

def test_negative_control_reordered_reduction_exceeds_zero_ulp():
    """A genuinely reordered accumulation does NOT stay bitwise equal.

    Re-stamp the MOSFET contributions of a real iterate in reversed
    device order — mathematically the same sums — and the assembled
    system plus its solve drift by at least one ULP. This is what the
    batched backend's lane-major scatter layout exists to avoid; if
    this control ever passes at 0 ULP, the bitwise assertions above
    have lost their teeth.
    """
    circuit = _lane_circuit(0)
    ws = SolverWorkspace(circuit)
    mg = ws.plan.mosfet_group
    rng = np.random.default_rng(20080310)
    x = rng.uniform(-0.2, 1.4, ws.size)

    ws.begin_solve(0.0, None, 1e-12, 1.0)
    ws.assemble_iteration(x)
    matrix_fwd = ws.system.matrix.copy()
    rhs_fwd = ws.system.rhs.copy()

    # Rebuild the same matrix but scatter the per-device stamp values
    # in reversed order. Shared nodes (the supply and output rails)
    # accumulate the same addends in a different sequence.
    naug = ws._base.shape[0]
    flat = ws._base.copy().reshape(-1)
    rhs = ws._rhs_base.copy()
    x_aug = np.append(x, 0.0)
    from repro.spice.devices.mosfet import ekv_evaluate
    vd, vg, vs, vb = (x_aug[mg.d], x_aug[mg.g], x_aug[mg.s], x_aug[mg.b])
    id_real, gdd, gdg, gds_, gdb = ekv_evaluate(
        mg.sign, mg.vto, mg.n_slope, mg.ut, mg.gamma, mg.phi,
        mg.eta_dibl, mg.lambda_clm, mg.ispec, vd, vg, vs, vb)
    mv = np.empty((mg.n, 12))
    mv[:, 0], mv[:, 2], mv[:, 4], mv[:, 6] = gdd, gdg, gds_, gdb
    np.negative(mv[:, 0:8:2], out=mv[:, 1:8:2])
    mv[:, 8:10], mv[:, 10:12] = 1e-12, -1e-12
    r = gdd * vd + gdg * vg + gds_ * vs + gdb * vb - id_real
    rv = np.stack([r, -r], axis=1)
    np.add.at(flat, mg.mat_flat.reshape(mg.n, 12)[::-1].ravel(),
              mv[::-1].ravel())
    np.add.at(rhs, mg.rhs_rows.reshape(mg.n, 2)[::-1].ravel(),
              rv[::-1].ravel())
    size = ws.size
    matrix_rev = flat.reshape(naug, naug)[:size, :size]
    rhs_rev = rhs[:size]

    assembled_ulp = max(max_ulp_delta(matrix_fwd, matrix_rev),
                        max_ulp_delta(rhs_fwd, rhs_rev))
    assert assembled_ulp > 0, \
        "reversed accumulation unexpectedly bit-identical"

    x_f = _solve_stack(matrix_fwd[None], rhs_fwd[None])[0]
    x_r = _solve_stack(matrix_rev[None], rhs_rev[None])[0]
    solve_ulp = max_ulp_delta(x_f, x_r)
    assert solve_ulp > 0
    # ...while staying numerically indistinguishable: the control
    # demonstrates order-sensitivity of bits, not of physics.
    np.testing.assert_allclose(x_r, x_f, rtol=1e-9, atol=1e-12)


# -- lane-masking property: batch membership never perturbs a lane --------

class TestLaneMasking:
    @given(mask=st.lists(st.booleans(), min_size=N_LANES,
                         max_size=N_LANES).filter(any))
    @settings(max_examples=10, deadline=None)
    def test_dc_subset_bitwise_equal_full_batch(self, mask):
        subset = [k for k in range(N_LANES) if mask[k]]
        # From zero the sstvs DC exhausts plain Newton — deliberately:
        # masking must hold on the failure trajectory too (150 damped
        # iterations per lane), not just for quick converging solves.
        group = LaneGroup(_lane_circuits())
        full = group.newton(np.arange(N_LANES),
                            np.zeros((N_LANES, group.size)),
                            times=[0.0] * N_LANES,
                            integrators=[None] * N_LANES)
        part = group.newton(np.asarray(subset),
                            np.zeros((len(subset), group.size)),
                            times=[0.0] * len(subset),
                            integrators=[None] * len(subset))
        for pos, k in enumerate(subset):
            assert np.array_equal(part.x[pos], full.x[k]), f"lane {k}"
            assert part.converged[pos] == full.converged[k]
            assert part.iterations[pos] == full.iterations[k]
            assert part.errors[pos] == full.errors[k]

    @given(mask=st.lists(st.booleans(), min_size=N_LANES,
                         max_size=N_LANES).filter(any))
    @settings(max_examples=5, deadline=None)
    def test_transient_subset_bitwise_equal_full_batch(
            self, mask, batched_result):
        subset = [k for k in range(N_LANES) if mask[k]]
        circuits = [_lane_circuit(k) for k in subset]
        part = BatchTransient(circuits, T_STOP, _options()).run()
        for pos, k in enumerate(subset):
            assert part.ok(pos)
            assert np.array_equal(part.lane(pos).times,
                                  batched_result.lane(k).times)
            assert np.array_equal(part.lane(pos)._states,
                                  batched_result.lane(k)._states)


# -- fault injection: a dying lane cannot poison its neighbors ------------

def _poison(circuit) -> None:
    """Make the DUT supply non-finite: DC cannot produce finite rows."""
    for device in circuit:
        if device.name == "vdut":
            device.shape = Dc(float("nan"))
            return
    raise AssertionError("testbench has no vdut supply")


class TestFaultContainment:
    @pytest.fixture(scope="class")
    def poisoned_run(self):
        circuits = _lane_circuits()
        _poison(circuits[1])
        return BatchTransient(circuits, T_STOP, _options()).run()

    def test_poisoned_lane_dies_with_serial_message(self, poisoned_run):
        assert not poisoned_run.ok(1)
        poisoned = _lane_circuit(1)
        _poison(poisoned)
        with pytest.raises(ConvergenceError) as err:
            Transient(poisoned, T_STOP, _options()).run()
        assert poisoned_run.errors[1] == str(err.value)
        with pytest.raises(ConvergenceError):
            poisoned_run.lane(1)

    def test_neighbors_stay_bitwise_clean(self, poisoned_run,
                                          serial_results):
        for k in (0, 2, 3):
            assert poisoned_run.ok(k)
            lane = poisoned_run.lane(k)
            assert np.array_equal(lane.times, serial_results[k].times)
            assert np.array_equal(lane._states,
                                  serial_results[k]._states), \
                f"lane {k} perturbed by the dying lane"

    def test_nan_iterate_evicts_only_its_lane(self):
        group = LaneGroup(_lane_circuits(3))
        x0 = np.zeros((3, group.size))
        clean = group.newton(np.arange(3), x0, times=[0.0] * 3,
                             integrators=[None] * 3)
        x0[1, 0] = np.nan
        mixed = group.newton(np.arange(3), x0, times=[0.0] * 3,
                             integrators=[None] * 3)
        assert not mixed.converged[1]
        assert "non-finite solution at iteration 0" in mixed.errors[1]
        for k in (0, 2):
            assert np.array_equal(mixed.x[k], clean.x[k])
            assert mixed.converged[k] == clean.converged[k]
            assert mixed.errors[k] == clean.errors[k]


# -- eviction to the serial ladder ---------------------------------------

def test_solve_dc_evicts_failed_lane_to_serial_ladder():
    circuits = _lane_circuits(3)
    _poison(circuits[1])
    group = LaneGroup(circuits)
    X, reports, errors = group.solve_dc()
    # The poisoned lane went through the serial ladder and still lost;
    # its error text is the ladder's, not the batched rung's.
    assert errors[1] is not None
    assert errors[0] is None and errors[2] is None
    for k in (0, 2):
        assert np.array_equal(X[k], solve_dc(_lane_circuit(k)))


# -- shared interpolation grid -------------------------------------------

class TestSharedGrid:
    def test_shape_and_endpoints(self, batched_result, serial_results):
        grid, states = batched_result.shared_grid(samples=64)
        assert grid.shape == (64,)
        assert states.shape == (N_LANES, 64,
                                serial_results[0]._states.shape[1])
        assert np.isfinite(states).all()
        assert grid[0] == 0.0
        for k in range(N_LANES):
            # t=0 sits on every lane's native grid: no interpolation.
            assert np.array_equal(states[k, 0],
                                  serial_results[k]._states[0])

    def test_dead_lane_rows_are_nan(self):
        circuits = _lane_circuits(2)
        _poison(circuits[1])
        result = BatchTransient(circuits, T_STOP, _options()).run()
        grid, states = result.shared_grid(samples=16)
        assert np.isnan(states[1]).all()
        assert np.isfinite(states[0]).all()

    def test_matches_manual_interp(self, batched_result):
        grid, states = batched_result.shared_grid(samples=32)
        lane = batched_result.lane(2)
        expected = np.interp(grid, lane.times, lane._states[:, 0])
        assert np.array_equal(states[2, :, 0], expected)
