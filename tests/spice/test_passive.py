"""Tests for resistor and capacitor devices."""

import pytest

from repro.errors import ModelError
from repro.spice import Circuit, OperatingPoint, Transient
from repro.spice.devices import Capacitor, Resistor, VoltageSource
from repro.spice.integration import (
    BACKWARD_EULER, TRAPEZOIDAL, IntegratorState,
)


class TestResistor:
    def test_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            Resistor("r", "a", "b", 0.0)
        with pytest.raises(ModelError):
            Resistor("r", "a", "b", -5.0)

    def test_ohms_law_in_op(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=2.0))
        ckt.add(Resistor("r", "a", "0", 100.0))
        op = OperatingPoint(ckt).run()
        assert op.current("v") == pytest.approx(-0.02, rel=1e-6)

    def test_series_division(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=3.0))
        ckt.add(Resistor("r1", "a", "m", 1e3))
        ckt.add(Resistor("r2", "m", "0", 2e3))
        op = OperatingPoint(ckt).run()
        assert op["m"] == pytest.approx(2.0, rel=1e-6)

    def test_parallel_conductances_add(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=1.0))
        ckt.add(Resistor("r1", "a", "0", 1e3))
        ckt.add(Resistor("r2", "a", "0", 1e3))
        op = OperatingPoint(ckt).run()
        assert op.supply_current("v") == pytest.approx(2e-3, rel=1e-6)


class TestCapacitorStatics:
    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            Capacitor("c", "a", "b", -1e-12)

    def test_open_in_dc(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=1.0))
        ckt.add(Resistor("r", "a", "m", 1e3))
        ckt.add(Capacitor("c", "m", "0", 1e-12))
        op = OperatingPoint(ckt).run()
        # No DC path through the cap: node m floats at the source level.
        assert op["m"] == pytest.approx(1.0, rel=1e-3)

    def test_zero_capacitance_allowed(self):
        cap = Capacitor("c", "a", "b", 0.0)
        assert cap.capacitance == 0.0


class TestIntegratorCompanions:
    def test_backward_euler_companion(self):
        state = IntegratorState(BACKWARD_EULER, dt=1e-12)
        geq, ieq = state.companion(1e-15, v_prev=0.5, i_prev=123.0)
        assert geq == pytest.approx(1e-15 / 1e-12)
        assert ieq == pytest.approx(-geq * 0.5)

    def test_trapezoidal_companion(self):
        state = IntegratorState(TRAPEZOIDAL, dt=1e-12)
        geq, ieq = state.companion(1e-15, v_prev=0.5, i_prev=1e-6)
        assert geq == pytest.approx(2e-15 / 1e-12)
        assert ieq == pytest.approx(-(geq * 0.5 + 1e-6))

    def test_branch_current_consistency(self):
        state = IntegratorState(TRAPEZOIDAL, dt=1e-12)
        # Constant voltage -> trapezoidal current decays to -i_prev...
        # actually i_new = geq*(v) + ieq = geq*(v - v_prev) - i_prev.
        i = state.branch_current(1e-15, v_new=0.5, v_prev=0.5,
                                 i_prev=1e-6)
        assert i == pytest.approx(-1e-6)


class TestRcTransient:
    def _rc(self, tau_r=1e3, tau_c=1e-12):
        from repro.spice.devices import Pulse
        ckt = Circuit("rc")
        ckt.add(VoltageSource("v", "in", "0", shape=Pulse(
            0, 1, delay=0.5e-9, rise=1e-12, fall=1e-12, width=50e-9,
            period=200e-9)))
        ckt.add(Resistor("r", "in", "out", tau_r))
        ckt.add(Capacitor("c", "out", "0", tau_c))
        return ckt

    def test_exponential_charge(self):
        import numpy as np
        ckt = self._rc()
        res = Transient(ckt, 5.5e-9).run()
        wave = res.wave("out")
        # tau = 1 ns; check three points on the curve.
        for n_tau in (1.0, 2.0, 3.0):
            expected = 1.0 - np.exp(-n_tau)
            assert wave.value_at(0.5e-9 + n_tau * 1e-9) == pytest.approx(
                expected, abs=0.01)

    def test_initial_condition_respected(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r", "out", "0", 1e6))
        ckt.add(Capacitor("c", "out", "0", 1e-12, ic=0.8))
        # Discharge from the IC through the resistor (tau = 1 us).
        res = Transient(ckt, 10e-9).run(x0=None)
        # DC would put out at 0; the IC applies at transient start only
        # if the device is initialized from it.
        cap = ckt.device("c")
        assert cap.ic == 0.8

    def test_charge_conservation_through_supply(self):
        ckt = self._rc()
        res = Transient(ckt, 5.5e-9).run()
        # Total charge delivered ~ C * dV = 1e-12 * ~1.0
        i_in = res.supply_current("v")
        charge = i_in.integral(0.4e-9, 5.5e-9)
        assert charge == pytest.approx(1e-12, rel=0.05)
