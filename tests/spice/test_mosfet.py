"""Tests for the EKV MOSFET model: physics sanity, Jacobian
consistency (property-based), and parameter validation."""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ModelError
from repro.spice.devices import Mosfet, MosfetParams
from repro.spice.devices.mosfet import _ekv_f, _ekv_fprime


class TestEkvFunction:
    def test_subthreshold_limit_is_exponential(self):
        # For x << 0, F(x) ~ exp(x).
        for x in (-10.0, -15.0, -20.0):
            assert _ekv_f(x) == pytest.approx(math.exp(x), rel=1e-2)

    def test_strong_inversion_limit_is_quadratic(self):
        # For x >> 0, F(x) ~ (x/2)^2.
        for x in (30.0, 50.0, 100.0):
            assert _ekv_f(x) == pytest.approx((x / 2.0) ** 2, rel=0.2)

    def test_monotone_increasing(self):
        xs = [-20, -5, -1, 0, 1, 5, 20, 60]
        values = [_ekv_f(x) for x in xs]
        assert all(b > a for a, b in zip(values, values[1:]))

    @given(st.floats(min_value=-60, max_value=60))
    def test_derivative_matches_finite_difference(self, x):
        h = 1e-6
        numeric = (_ekv_f(x + h) - _ekv_f(x - h)) / (2 * h)
        assert _ekv_fprime(x) == pytest.approx(numeric, rel=1e-4,
                                               abs=1e-12)

    def test_positive_everywhere(self):
        for x in (-100, -1, 0, 1, 100):
            assert _ekv_f(x) >= 0.0
            assert _ekv_fprime(x) >= 0.0


class TestParamsValidation:
    def _kwargs(self, **overrides):
        base = dict(name="x", polarity="n", vto=0.39, n_slope=1.2,
                    u0=0.018, tox=2e-9, lambda_clm=0.1, gamma=0.0,
                    phi=0.85, eta_dibl=0.05, cgdo=3e-10, cgso=3e-10,
                    cj=1e-3, ldiff=1e-7)
        base.update(overrides)
        return base

    def test_bad_polarity(self):
        with pytest.raises(ModelError):
            MosfetParams(**self._kwargs(polarity="x"))

    def test_negative_vto(self):
        with pytest.raises(ModelError):
            MosfetParams(**self._kwargs(vto=-0.3))

    def test_slope_below_one(self):
        with pytest.raises(ModelError):
            MosfetParams(**self._kwargs(n_slope=0.9))

    def test_zero_tox(self):
        with pytest.raises(ModelError):
            MosfetParams(**self._kwargs(tox=0.0))

    def test_negative_temperature(self):
        with pytest.raises(ModelError):
            MosfetParams(**self._kwargs(temperature=-1.0))

    def test_cox_positive(self):
        params = MosfetParams(**self._kwargs())
        assert params.cox > 0

    def test_thermal_voltage_room_temp(self):
        params = MosfetParams(**self._kwargs(temperature=300.15))
        assert params.thermal_voltage == pytest.approx(0.02587, rel=1e-3)

    def test_with_overrides(self):
        params = MosfetParams(**self._kwargs())
        tweaked = params.with_overrides(vto=0.5)
        assert tweaked.vto == 0.5
        assert params.vto == 0.39  # original untouched


class TestMosfetConstruction:
    def test_bad_width(self, nmos_params):
        with pytest.raises(ModelError):
            Mosfet("m", "d", "g", "s", "b", nmos_params, w=-1e-6, l=1e-7)

    def test_bad_multiplier(self, nmos_params):
        with pytest.raises(ModelError):
            Mosfet("m", "d", "g", "s", "b", nmos_params, 1e-6, 1e-7, m=0)

    def test_expansion_has_five_caps(self, nmos):
        aux = nmos.expand()
        assert len(aux) == 5
        names = {a.name for a in aux}
        assert names == {"mn#cgs", "mn#cgd", "mn#cgb", "mn#cdb", "mn#csb"}

    def test_gate_leak_adds_resistor(self, nmos_params):
        leaky = nmos_params.with_overrides(gate_leak=1e4)
        device = Mosfet("m", "d", "g", "s", "b", leaky, 0.2e-6, 0.1e-6)
        aux = device.expand()
        assert len(aux) == 6
        resistor = [a for a in aux if a.name == "m#rg"][0]
        assert resistor.resistance == pytest.approx(
            1.0 / (1e4 * 0.2e-6 * 0.1e-6))

    def test_is_nonlinear(self, nmos):
        assert nmos.is_nonlinear()


class TestNmosPhysics:
    def test_on_current_magnitude(self, nmos):
        # ~1 mA/um at full bias for the 90 nm-like card.
        ion = nmos.drain_current(1.2, 1.2, 0.0, 0.0)
        per_um = ion / 0.2
        assert 0.3e-3 < per_um < 3e-3

    def test_off_current_much_smaller(self, nmos):
        ion = nmos.drain_current(1.2, 1.2, 0.0, 0.0)
        ioff = nmos.drain_current(1.2, 0.0, 0.0, 0.0)
        assert ioff > 0
        assert ion / ioff > 1e4

    def test_zero_vds_zero_current(self, nmos):
        assert nmos.drain_current(0.5, 1.2, 0.5, 0.0) == pytest.approx(
            0.0, abs=1e-12)

    def test_reverse_operation_negative_current(self, nmos):
        # Drain below source: current flows source -> drain.
        forward = nmos.drain_current(1.0, 1.2, 0.0, 0.0)
        reverse = nmos.drain_current(0.0, 1.2, 1.0, 0.0)
        assert reverse < 0
        assert abs(reverse) == pytest.approx(forward, rel=0.35)

    def test_current_scales_with_width(self, nmos_params):
        narrow = Mosfet("a", "d", "g", "s", "b", nmos_params, 0.2e-6, 1e-7)
        wide = Mosfet("b", "d", "g", "s", "b", nmos_params, 0.4e-6, 1e-7)
        ratio = (wide.drain_current(1.2, 1.2, 0, 0)
                 / narrow.drain_current(1.2, 1.2, 0, 0))
        assert ratio == pytest.approx(2.0, rel=1e-6)

    def test_multiplier_equals_width_scaling(self, nmos_params):
        doubled = Mosfet("a", "d", "g", "s", "b", nmos_params, 0.2e-6,
                         1e-7, m=2)
        wide = Mosfet("b", "d", "g", "s", "b", nmos_params, 0.4e-6, 1e-7)
        assert doubled.drain_current(1.2, 1.2, 0, 0) == pytest.approx(
            wide.drain_current(1.2, 1.2, 0, 0))

    def test_subthreshold_slope(self, nmos):
        # n = 1.2 -> ~71 mV/decade at room temperature.
        i1 = nmos.drain_current(1.2, 0.20, 0.0, 0.0)
        i2 = nmos.drain_current(1.2, 0.13, 0.0, 0.0)
        decades = math.log10(i1 / i2)
        slope = 70e-3 / decades
        assert 0.06 < slope < 0.085

    def test_dibl_raises_off_current(self, nmos):
        low_vd = nmos.drain_current(0.4, 0.0, 0.0, 0.0)
        high_vd = nmos.drain_current(1.4, 0.0, 0.0, 0.0)
        assert high_vd > low_vd * 2

    def test_clm_gives_finite_output_conductance(self, nmos):
        i1 = nmos.drain_current(1.0, 1.2, 0.0, 0.0)
        i2 = nmos.drain_current(1.2, 1.2, 0.0, 0.0)
        assert i2 > i1  # saturation current still grows with Vds

    def test_region_labels(self, nmos):
        assert nmos.region(1.2, 0.0, 0.0, 0.0) == "subthreshold"
        assert nmos.region(0.05, 1.2, 0.0, 0.0) == "triode"
        assert nmos.region(1.2, 0.8, 0.0, 0.0) == "saturation"


class TestPmosPhysics:
    @pytest.fixture
    def pmos(self, pmos_params):
        return Mosfet("mp", "d", "g", "s", "b", pmos_params,
                      w=0.4e-6, l=0.1e-6)

    def test_on_current_is_negative_into_drain(self, pmos):
        # Source at VDD, gate low, drain low: conducts, current flows
        # source -> drain, i.e. negative into the drain terminal.
        ion = pmos.drain_current(0.0, 0.0, 1.2, 1.2)
        assert ion < 0

    def test_off_when_gate_high(self, pmos):
        ioff = pmos.drain_current(0.0, 1.2, 1.2, 1.2)
        ion = pmos.drain_current(0.0, 0.0, 1.2, 1.2)
        assert abs(ion) / abs(ioff) > 1e4

    def test_weaker_than_nmos(self, pmos, nmos):
        # Same |bias|: PMOS mobility is lower even at double width.
        ip = abs(pmos.drain_current(0.0, 0.0, 1.2, 1.2))
        i_n = abs(nmos.drain_current(1.2, 1.2, 0.0, 0.0))
        assert ip < i_n


node_voltage = st.floats(min_value=-0.5, max_value=1.6)


class TestJacobianConsistency:
    """The analytic Jacobian must match finite differences everywhere —
    the solver's convergence depends on it."""

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(vd=node_voltage, vg=node_voltage, vs=node_voltage,
           vb=st.floats(min_value=-0.2, max_value=0.2))
    def test_nmos_jacobian(self, nmos, vd, vg, vs, vb):
        self._check(nmos, vd, vg, vs, vb)

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(vd=node_voltage, vg=node_voltage, vs=node_voltage,
           vb=st.floats(min_value=1.0, max_value=1.4))
    def test_pmos_jacobian(self, pmos_params, vd, vg, vs, vb):
        device = Mosfet("mp", "d", "g", "s", "b", pmos_params,
                        0.4e-6, 0.1e-6)
        self._check(device, vd, vg, vs, vb)

    @staticmethod
    def _check(device, vd, vg, vs, vb):
        current, gdd, gdg, gds, gdb = device.evaluate(vd, vg, vs, vb)
        h = 1e-7
        scale = max(abs(current), 1e-12)
        # Central differences cannot resolve a Jacobian entry much
        # smaller than eps * (dominant term) / h: near Vds = 0 the EKV
        # current is a difference of two large F() values, so the FD
        # reference bottoms out in cancellation noise around
        # gmax * h even when the analytic value is exact.
        gmax = max(abs(gdd), abs(gdg), abs(gds), abs(gdb))
        floor = max(scale * 1e-4, gmax * h)
        for index, analytic in ((0, gdd), (1, gdg), (2, gds), (3, gdb)):
            args = [vd, vg, vs, vb]
            args[index] += h
            up = device.evaluate(*args)[0]
            args[index] -= 2 * h
            down = device.evaluate(*args)[0]
            numeric = (up - down) / (2 * h)
            assert analytic == pytest.approx(
                numeric, rel=5e-3, abs=floor), (
                f"terminal {index} at {vd=}, {vg=}, {vs=}, {vb=}")

    def test_bulk_derivative_is_negative_sum(self, nmos):
        _, gdd, gdg, gds, gdb = nmos.evaluate(1.1, 0.9, 0.1, 0.0)
        assert gdb == pytest.approx(-(gdd + gdg + gds), rel=1e-9)
