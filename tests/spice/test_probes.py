"""Tests for per-device current probing."""

import pytest

from repro.spice import Circuit, OperatingPoint
from repro.spice.devices import Diode, Resistor, VoltageSource
from repro.spice.probes import device_currents, dominant_currents


class TestDeviceCurrents:
    def _solved(self, ckt):
        op = OperatingPoint(ckt).run()
        return op.x

    def test_resistor_current(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=1.0))
        ckt.add(Resistor("r", "a", "0", 1e3))
        x = self._solved(ckt)
        currents = device_currents(ckt, x)
        assert currents["r"] == pytest.approx(1e-3, rel=1e-6)

    def test_diode_current_matches_resistor(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=2.0))
        ckt.add(Resistor("r", "a", "d", 1e3))
        ckt.add(Diode("d1", "d", "0"))
        x = self._solved(ckt)
        currents = device_currents(ckt, x)
        assert currents["d1"] == pytest.approx(currents["r"], rel=1e-4)

    def test_mosfet_kcl_through_inverter(self, pdk):
        from repro.cells import add_inverter
        ckt = Circuit("t")
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        ckt.add(VoltageSource("vin", "in", "0", dc=0.6))
        add_inverter(ckt, pdk, "inv", "in", "out", "vdd")
        x = self._solved(ckt)
        currents = device_currents(ckt, x)
        # At midrail both devices conduct the same crowbar current.
        assert currents["inv.mn"] == pytest.approx(-currents["inv.mp"],
                                                   rel=1e-3)

    def test_dominant_sorted_and_limited(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=1.0))
        ckt.add(Resistor("rbig", "a", "0", 1e2))
        ckt.add(Resistor("rsmall", "a", "0", 1e6))
        x = self._solved(ckt)
        top = dominant_currents(ckt, x, top=1)
        assert len(top) == 1
        assert top[0][0] == "rbig"

    def test_floor_filters_tiny(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v", "a", "0", dc=1.0))
        ckt.add(Resistor("r", "a", "0", 1e3))
        x = self._solved(ckt)
        assert dominant_currents(ckt, x, floor=1.0) == []
