"""Tests for the waveform container and measurement primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MeasurementError
from repro.spice.waveform import FALL, RISE, Waveform, propagation_delay


def ramp(t0=0.0, t1=1.0, v0=0.0, v1=1.0, n=11):
    times = np.linspace(t0, t1, n)
    values = np.linspace(v0, v1, n)
    return Waveform(times, values)


class TestConstruction:
    def test_rejects_single_sample(self):
        with pytest.raises(MeasurementError):
            Waveform([0.0], [1.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(MeasurementError):
            Waveform([0.0, 1.0], [1.0])

    def test_rejects_nonmonotonic_times(self):
        with pytest.raises(MeasurementError):
            Waveform([0.0, 1.0, 1.0], [0, 1, 2])

    def test_len_and_bounds(self):
        w = ramp(n=5)
        assert len(w) == 5
        assert w.t_start == 0.0
        assert w.t_stop == 1.0


class TestInterpolation:
    def test_midpoint(self):
        w = ramp()
        assert w.value_at(0.5) == pytest.approx(0.5)

    def test_clamped_outside(self):
        w = ramp()
        assert w.value_at(-1.0) == 0.0
        assert w.value_at(2.0) == 1.0

    def test_initial_final(self):
        w = ramp(v0=0.2, v1=0.9)
        assert w.initial_value() == 0.2
        assert w.final_value() == 0.9

    def test_min_max(self):
        w = Waveform([0, 1, 2], [1.0, -1.0, 0.5])
        assert w.minimum() == -1.0
        assert w.maximum() == 1.0


class TestCrossings:
    def test_single_rise(self):
        w = ramp()
        assert w.crossings(0.5, RISE) == [pytest.approx(0.5)]

    def test_no_fall_on_rising_ramp(self):
        assert ramp().crossings(0.5, FALL) == []

    def test_triangle_both_edges(self):
        w = Waveform([0, 1, 2], [0.0, 1.0, 0.0])
        both = w.crossings(0.5)
        assert len(both) == 2
        assert w.crossings(0.5, RISE) == [pytest.approx(0.5)]
        assert w.crossings(0.5, FALL) == [pytest.approx(1.5)]

    def test_cross_occurrence(self):
        w = Waveform([0, 1, 2, 3, 4], [0, 1, 0, 1, 0])
        second = w.cross(0.5, RISE, occurrence=2)
        assert second == pytest.approx(2.5)

    def test_cross_after(self):
        w = Waveform([0, 1, 2, 3, 4], [0, 1, 0, 1, 0])
        assert w.cross(0.5, RISE, after=1.0) == pytest.approx(2.5)

    def test_missing_crossing_raises(self):
        with pytest.raises(MeasurementError):
            ramp().cross(2.0)

    def test_bad_edge_name(self):
        with pytest.raises(MeasurementError):
            ramp().crossings(0.5, "sideways")

    def test_exact_sample_hit(self):
        w = Waveform([0, 1, 2], [0.0, 0.5, 1.0])
        assert w.crossings(0.5, RISE) == [pytest.approx(1.0)]


class TestAggregates:
    def test_integral_of_ramp(self):
        assert ramp().integral() == pytest.approx(0.5)

    def test_average_of_ramp(self):
        assert ramp().average() == pytest.approx(0.5)

    def test_windowed_average(self):
        w = Waveform([0, 1, 2, 3], [0, 0, 1, 1])
        assert w.average(2.0, 3.0) == pytest.approx(1.0)

    def test_rms_of_constant(self):
        w = Waveform([0, 1], [2.0, 2.0])
        assert w.rms() == pytest.approx(2.0)

    def test_clip_endpoints_interpolated(self):
        w = ramp()
        clipped = w.clip(0.25, 0.75)
        assert clipped.t_start == pytest.approx(0.25)
        assert clipped.initial_value() == pytest.approx(0.25)

    def test_clip_empty_window_raises(self):
        with pytest.raises(MeasurementError):
            ramp().clip(0.5, 0.5)


class TestEdgeTiming:
    def test_transition_time_rise(self):
        w = ramp()
        assert w.transition_time(0.1, 0.9, RISE) == pytest.approx(0.8)

    def test_transition_time_fall(self):
        w = Waveform([0, 1], [1.0, 0.0])
        assert w.transition_time(0.1, 0.9, FALL) == pytest.approx(0.8)

    def test_transition_time_bad_edge(self):
        with pytest.raises(MeasurementError):
            ramp().transition_time(0.1, 0.9, "both")

    def test_settles_to(self):
        w = Waveform([0, 1, 2, 3], [0.0, 0.9, 1.01, 0.99])
        assert w.settles_to(1.0, tolerance=0.05, after=1.5)
        assert not w.settles_to(1.0, tolerance=0.05, after=0.5)

    def test_settles_to_no_samples(self):
        assert not ramp().settles_to(1.0, 0.1, after=99.0)


class TestComposition:
    def test_negation(self):
        w = -ramp()
        assert w.final_value() == -1.0

    def test_scaled_shifted(self):
        w = ramp().scaled(2.0).shifted(1.0)
        assert w.final_value() == pytest.approx(3.0)

    def test_resampled(self):
        w = ramp().resampled([0.0, 0.5, 1.0])
        assert len(w) == 3
        assert w.value_at(0.5) == pytest.approx(0.5)

    def test_multiply_power(self):
        v = Waveform([0, 1], [2.0, 2.0])
        i = Waveform([0, 0.5, 1], [1.0, 1.0, 1.0])
        p = v.multiply(i)
        assert p.average() == pytest.approx(2.0)


class TestPropagationDelay:
    def test_simple_delay(self):
        w_in = Waveform([0, 1, 2, 10], [0, 1, 1, 1])
        w_out = Waveform([0, 2, 3, 10], [0, 0, 1, 1])
        delay = propagation_delay(w_in, w_out, 0.5, 0.5, RISE, RISE)
        assert delay == pytest.approx(2.0)

    def test_inverting_delay(self):
        w_in = Waveform([0, 1, 2, 10], [0, 1, 1, 1])
        w_out = Waveform([0, 1.5, 2.5, 10], [1, 1, 0, 0])
        delay = propagation_delay(w_in, w_out, 0.5, 0.5, RISE, FALL)
        assert delay == pytest.approx(1.5)

    def test_missing_output_edge_raises(self):
        w_in = Waveform([0, 1, 2], [0, 1, 1])
        w_out = Waveform([0, 1, 2], [0, 0, 0])
        with pytest.raises(MeasurementError):
            propagation_delay(w_in, w_out, 0.5, 0.5, RISE, RISE)


# -- property-based invariants ------------------------------------------

finite = st.floats(min_value=-100, max_value=100,
                   allow_nan=False, allow_infinity=False)


@st.composite
def waveforms(draw, min_samples=2, max_samples=40):
    n = draw(st.integers(min_value=min_samples, max_value=max_samples))
    deltas = draw(st.lists(st.floats(min_value=1e-3, max_value=10.0),
                           min_size=n - 1, max_size=n - 1))
    times = np.concatenate([[0.0], np.cumsum(deltas)])
    values = np.asarray(draw(st.lists(finite, min_size=n, max_size=n)))
    return Waveform(times, values)


class TestWaveformProperties:
    @settings(max_examples=50, deadline=None)
    @given(waveforms())
    def test_average_within_bounds(self, w):
        assert w.minimum() - 1e-9 <= w.average() <= w.maximum() + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(waveforms())
    def test_integral_additivity(self, w):
        mid = (w.t_start + w.t_stop) / 2.0
        if mid <= w.t_start or mid >= w.t_stop:
            return
        total = w.integral()
        split = w.integral(w.t_start, mid) + w.integral(mid, w.t_stop)
        assert split == pytest.approx(total, rel=1e-6, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(waveforms(), finite)
    def test_crossings_alternate_directions(self, w, level):
        both = w.crossings(level)
        rises = w.crossings(level, RISE)
        falls = w.crossings(level, FALL)
        assert sorted(rises + falls) == pytest.approx(both)

    @settings(max_examples=50, deadline=None)
    @given(waveforms())
    def test_value_at_samples_matches(self, w):
        for t, v in zip(w.times, w.values):
            assert w.value_at(float(t)) == pytest.approx(float(v),
                                                         abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(waveforms())
    def test_negation_flips_integral(self, w):
        assert (-w).integral() == pytest.approx(-w.integral(),
                                                rel=1e-9, abs=1e-9)
