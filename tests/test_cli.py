"""Tests for the command-line interface (in-process main())."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_kind_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "warp"])

    def test_defaults(self):
        args = build_parser().parse_args(["characterize", "sstvs"])
        assert args.vddi == 0.8
        assert args.vddo == 1.2
        assert args.temp == 27.0


class TestCommands:
    def test_characterize_sstvs(self, capsys):
        code = main(["characterize", "sstvs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Delay Rise" in out
        assert "Functional" in out

    def test_compare(self, capsys):
        code = main(["compare", "--vddi", "1.2", "--vddo", "0.8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SS-TVS" in out and "Combined" in out

    def test_sweep_coarse(self, capsys):
        code = main(["sweep", "sstvs", "--step", "0.6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Rising delay" in out
        assert "functional fraction: 1.000" in out

    def test_mc_small(self, capsys):
        code = main(["mc", "sstvs", "--runs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "yield=100.0%" in out

    def test_functional(self, capsys):
        code = main(["functional", "sstvs", "--step", "0.6"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_area(self, capsys):
        code = main(["area"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sstvs" in out

    def test_liberty_to_file(self, tmp_path, capsys):
        target = tmp_path / "cells.lib"
        code = main(["liberty", "inverter", "--vddi", "1.2",
                     "--vddo", "1.2", "-o", str(target)])
        assert code == 0
        text = target.read_text()
        assert "library (" in text
        assert "cell (" in text

    def test_vtc(self, capsys):
        code = main(["vtc", "sstvs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "VOH" in out and "NML" in out

    @pytest.mark.resilience
    def test_check_self_test(self, capsys):
        code = main(["check", "--runs", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FAIL" not in out
        assert "quarantine names exactly the injected indices" in out
        assert "check passed" in out

    def test_vcd_to_file(self, tmp_path):
        target = tmp_path / "wave.vcd"
        code = main(["vcd", "sstvs", "-o", str(target)])
        assert code == 0
        text = target.read_text()
        assert "$enddefinitions" in text
        assert "$var real" in text
