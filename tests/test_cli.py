"""Tests for the command-line interface (in-process main())."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_kind_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "warp"])

    def test_defaults(self):
        args = build_parser().parse_args(["characterize", "sstvs"])
        assert args.vddi == 0.8
        assert args.vddo == 1.2
        assert args.temp == 27.0


class TestCommands:
    def test_characterize_sstvs(self, capsys):
        code = main(["characterize", "sstvs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Delay Rise" in out
        assert "Functional" in out

    def test_compare(self, capsys):
        code = main(["compare", "--vddi", "1.2", "--vddo", "0.8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SS-TVS" in out and "Combined" in out

    def test_sweep_coarse(self, capsys):
        code = main(["sweep", "sstvs", "--step", "0.6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Rising delay" in out
        assert "functional fraction: 1.000" in out

    def test_mc_small(self, capsys):
        code = main(["mc", "sstvs", "--runs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "yield=100.0%" in out

    def test_functional(self, capsys):
        code = main(["functional", "sstvs", "--step", "0.6"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_area(self, capsys):
        code = main(["area"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sstvs" in out

    def test_liberty_to_file(self, tmp_path, capsys):
        target = tmp_path / "cells.lib"
        code = main(["liberty", "inverter", "--vddi", "1.2",
                     "--vddo", "1.2", "-o", str(target)])
        assert code == 0
        text = target.read_text()
        assert "library (" in text
        assert "cell (" in text

    def test_vtc(self, capsys):
        code = main(["vtc", "sstvs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "VOH" in out and "NML" in out

    @pytest.mark.resilience
    def test_check_self_test(self, capsys):
        code = main(["check", "--runs", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FAIL" not in out
        assert "quarantine names exactly the injected indices" in out
        assert "check passed" in out

    def test_vcd_to_file(self, tmp_path):
        target = tmp_path / "wave.vcd"
        code = main(["vcd", "sstvs", "-o", str(target)])
        assert code == 0
        text = target.read_text()
        assert "$enddefinitions" in text
        assert "$var real" in text


def _stored_run_id(output: str) -> str:
    for line in output.splitlines():
        if line.startswith("stored run: "):
            return line.split("stored run: ", 1)[1].strip()
    raise AssertionError(f"no 'stored run:' line in output:\n{output}")


@pytest.mark.experiment
class TestExperimentCommands:
    """Campaign flags, the artifact store CLI, and the engine smoke."""

    def test_temp_subcommand(self, capsys):
        code = main(["temp", "sstvs", "--temps", "27"])
        out = capsys.readouterr().out
        assert code == 0
        assert "T[C]" in out and "d_rise" in out

    def test_sens_subcommand(self, capsys):
        code = main(["sens", "--knobs", "w_mc"])
        out = capsys.readouterr().out
        assert code == 0
        assert "w_mc" in out

    def test_mc_stores_then_runs_and_show(self, tmp_path, capsys):
        code = main(["mc", "sstvs", "--runs", "2",
                     "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        run_id = _stored_run_id(out)

        code = main(["runs", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert run_id in out

        code = main(["show", run_id, "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "pdk_fingerprint" in out
        assert "seed" in out
        assert "2 rows (2 ok, 0 quarantined)" in out

    def test_mc_resume_reuses_run_dir(self, tmp_path, capsys):
        main(["mc", "sstvs", "--runs", "2", "--out", str(tmp_path)])
        run_id = _stored_run_id(capsys.readouterr().out)
        code = main(["mc", "sstvs", "--runs", "4",
                     "--out", str(tmp_path), "--resume", run_id])
        out = capsys.readouterr().out
        assert code == 0
        assert _stored_run_id(out) == run_id
        assert "4 runs" in out

    def test_runs_with_empty_store(self, tmp_path, capsys):
        code = main(["runs", "--out", str(tmp_path)])
        assert code == 0
        assert "no stored runs" in capsys.readouterr().out

    def test_bench_appends_and_checks(self, tmp_path, capsys,
                                      monkeypatch):
        import repro.analysis.bench as bench

        record = {
            "schema": bench.BENCH_SCHEMA,
            "workloads": {
                "mc_serial": {"wall_s": 0.5, "solves": 10,
                              "solves_per_s": 20.0},
                "mc_parallel": {"wall_s": 0.4,
                                "identical_to_serial": True},
                "sweep": {"wall_s": 0.2, "solves": 5,
                          "solves_per_s": 25.0},
            },
            "speedups": {},
        }
        monkeypatch.setattr(bench, "run_bench_suite",
                            lambda **kwargs: record)
        target = tmp_path / "BENCH.json"

        code = main(["bench", "--out", str(target)])
        assert code == 0
        assert "(1 entry)" in capsys.readouterr().out
        code = main(["bench", "--out", str(target)])
        assert code == 0
        assert "(2 entries)" in capsys.readouterr().out

        code = main(["bench", "--out", str(target), "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no throughput regression" in out

    def test_check_experiments_smoke(self, capsys):
        code = main(["check", "--runs", "2", "--experiments"])
        out = capsys.readouterr().out
        assert code == 0
        assert "experiment engine / artifact store:" in out
        assert "resume completes only the missing points" in out
        assert "FAIL" not in out


def _bench_stub_record():
    import repro.analysis.bench as bench

    return {
        "schema": bench.BENCH_SCHEMA,
        "workloads": {
            "mc_serial": {"wall_s": 0.5, "solves": 10,
                          "solves_per_s": 20.0},
            "mc_parallel": {"wall_s": 0.4,
                            "identical_to_serial": True},
            "mc_batched": {"wall_s": 0.3, "solves": 10,
                           "solves_per_s": 33.0, "backend": "batched",
                           "identical_to_serial": True},
            "sweep": {"wall_s": 0.2, "solves": 5,
                      "solves_per_s": 25.0},
        },
        "speedups": {},
    }


@pytest.mark.experiment
class TestCliErrorPaths:
    """Damaged stores and bad baselines exit nonzero with guidance,
    never a traceback."""

    def _store_run(self, tmp_path, capsys) -> str:
        code = main(["mc", "sstvs", "--runs", "2",
                     "--out", str(tmp_path)])
        assert code == 0
        return _stored_run_id(capsys.readouterr().out)

    def test_trace_on_run_without_trace_section(self, tmp_path, capsys):
        run_id = self._store_run(tmp_path, capsys)
        code = main(["trace", run_id, "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "no trace section" in out
        assert "--trace" in out  # tells the user how to get one

    def test_show_on_truncated_rows_file(self, tmp_path, capsys):
        run_id = self._store_run(tmp_path, capsys)
        rows = tmp_path / run_id / "rows.jsonl"
        lines = rows.read_text().splitlines()
        assert len(lines) == 2
        rows.write_text(lines[0] + "\n")
        code = main(["show", run_id, "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "truncated" in out
        assert "--resume" in out and run_id in out

    def test_show_on_intact_rows_file_stays_clean(self, tmp_path,
                                                  capsys):
        run_id = self._store_run(tmp_path, capsys)
        code = main(["show", run_id, "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "truncated" not in out

    def test_bench_check_missing_baseline(self, tmp_path, capsys,
                                          monkeypatch):
        import repro.analysis.bench as bench

        monkeypatch.setattr(bench, "run_bench_suite",
                            lambda **kwargs: _bench_stub_record())
        monkeypatch.chdir(tmp_path)  # hide the repo's BENCH_PR2.json
        target = tmp_path / "MISSING.json"
        code = main(["bench", "--out", str(target), "--check"])
        out = capsys.readouterr().out
        assert code == 1
        assert "no baseline file" in out
        assert "repro bench --out" in out

    def test_bench_check_invalid_json_baseline(self, tmp_path, capsys,
                                               monkeypatch):
        import repro.analysis.bench as bench

        monkeypatch.setattr(bench, "run_bench_suite",
                            lambda **kwargs: _bench_stub_record())
        target = tmp_path / "BROKEN.json"
        target.write_text('{"schema": "repro-bench-v1", truncated')
        code = main(["bench", "--out", str(target), "--check"])
        out = capsys.readouterr().out
        assert code == 1
        assert "not valid JSON" in out
        assert "re-record" in out

    def test_bench_check_unknown_baseline_schema(self, tmp_path, capsys,
                                                 monkeypatch):
        import json

        import repro.analysis.bench as bench

        monkeypatch.setattr(bench, "run_bench_suite",
                            lambda **kwargs: _bench_stub_record())
        target = tmp_path / "OLD.json"
        target.write_text(json.dumps({"schema": "repro-bench-v99",
                                      "workloads": {}}))
        code = main(["bench", "--out", str(target), "--check"])
        out = capsys.readouterr().out
        assert code == 1
        assert "repro-bench-v99" in out
        assert "repro bench --out" in out


class TestCacheServeParser:
    def test_serve_requires_jobs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--jobs", "jobs"])
        assert args.once is False
        assert args.workers == 2
        assert args.chunk_size == 4

    def test_cache_action_choices(self):
        args = build_parser().parse_args(["cache", "stats"])
        assert args.action == "stats" and args.root == "cache"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "defrag"])

    def test_campaign_cache_flag(self):
        args = build_parser().parse_args(["mc", "sstvs",
                                          "--cache", "solves"])
        assert args.cache == "solves"
        assert build_parser().parse_args(["mc", "sstvs"]).cache is None

    def test_check_chaos_flag(self):
        assert build_parser().parse_args(["check", "--chaos"]).chaos
        assert not build_parser().parse_args(["check"]).chaos


@pytest.mark.experiment
class TestCacheServeCommands:
    def test_cache_stats_on_empty_root(self, tmp_path, capsys):
        code = main(["cache", "stats", "--root", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0" in out

    def test_mc_with_cache_then_stats_verify_clear(self, tmp_path,
                                                   capsys):
        cache_root = str(tmp_path / "solves")
        code = main(["mc", "sstvs", "--runs", "2",
                     "--cache", cache_root])
        assert code == 0
        capsys.readouterr()

        code = main(["cache", "stats", "--root", cache_root])
        out = capsys.readouterr().out
        assert code == 0
        assert "entries" in out and "2" in out

        code = main(["cache", "verify", "--root", cache_root])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 corrupt" in out

        code = main(["cache", "clear", "--root", cache_root])
        out = capsys.readouterr().out
        assert code == 0
        assert "2" in out

    def test_cache_verify_flags_corruption(self, tmp_path, capsys):
        import json as _json

        from repro.runtime.cache import SolveCache, cache_key

        cache_root = tmp_path / "solves"
        cache = SolveCache(cache_root)
        key = cache_key(x=1)
        cache.put(key, 1.0)
        entry = _json.loads(cache.entry_path(key).read_text())
        entry["value"] = 2.0  # checksum now stale
        cache.entry_path(key).write_text(_json.dumps(entry))

        with pytest.warns(RuntimeWarning):
            code = main(["cache", "verify", "--root", str(cache_root)])
        out = capsys.readouterr().out
        assert code == 1
        assert "1 corrupt" in out

    def test_mc_warm_cache_reruns_identically(self, tmp_path, capsys):
        cache_root = str(tmp_path / "solves")
        assert main(["mc", "sstvs", "--runs", "2",
                     "--cache", cache_root]) == 0
        cold = capsys.readouterr().out
        assert main(["mc", "sstvs", "--runs", "2",
                     "--cache", cache_root]) == 0
        warm = capsys.readouterr().out
        assert [l for l in warm.splitlines() if "yield" in l] \
            == [l for l in cold.splitlines() if "yield" in l]

    def test_serve_once_empty_directory(self, tmp_path, capsys):
        jobs = tmp_path / "jobs"
        jobs.mkdir()
        code = main(["serve", "--jobs", str(jobs), "--once",
                     "--out", str(tmp_path / "store")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 job(s) processed" in out

    def test_serve_once_runs_a_job_file(self, tmp_path, capsys):
        import json as _json

        jobs = tmp_path / "jobs"
        jobs.mkdir()
        (jobs / "job1.json").write_text(_json.dumps(
            {"experiment": "mc", "kind": "sstvs", "runs": 2}))
        code = main(["serve", "--jobs", str(jobs), "--once",
                     "--out", str(tmp_path / "store"),
                     "--cache", str(tmp_path / "solves")])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 job(s) processed" in out
        status = _json.loads((jobs / "job1.done.json").read_text())
        assert status["state"] == "done"
        assert status["counts"]["ok"] == 2
