"""Tests for DVS schedules and domain-relationship analysis."""

import pytest

from repro.errors import AnalysisError
from repro.soc import Crossing, DvsSchedule, Module, VoltageDomain
from repro.soc.domain import relationship_flips


class TestDvsSchedule:
    def test_constant(self):
        s = DvsSchedule.constant(1.2)
        assert s.voltage_at(0.0) == 1.2
        assert s.voltage_at(1e9) == 1.2
        assert s.change_times() == []

    def test_piecewise_lookup(self):
        s = DvsSchedule(((0.0, 1.2), (5.0, 0.9), (10.0, 1.1)))
        assert s.voltage_at(2.0) == 1.2
        assert s.voltage_at(5.0) == 0.9
        assert s.voltage_at(7.0) == 0.9
        assert s.voltage_at(12.0) == 1.1

    def test_before_first_point(self):
        s = DvsSchedule(((1.0, 0.9),))
        assert s.voltage_at(0.0) == 0.9

    def test_min_max(self):
        s = DvsSchedule(((0.0, 1.2), (5.0, 0.9)))
        assert s.min_voltage == 0.9
        assert s.max_voltage == 1.2

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            DvsSchedule(())

    def test_nonmonotonic_rejected(self):
        with pytest.raises(AnalysisError):
            DvsSchedule(((0.0, 1.0), (0.0, 1.2)))

    def test_nonpositive_voltage_rejected(self):
        with pytest.raises(AnalysisError):
            DvsSchedule(((0.0, 0.0),))


class TestRelationshipFlips:
    def test_static_pair_no_flips(self):
        a = DvsSchedule.constant(1.2)
        b = DvsSchedule.constant(0.8)
        assert relationship_flips(a, b) == 0

    def test_single_flip(self):
        a = DvsSchedule(((0.0, 1.2), (5.0, 0.7)))
        b = DvsSchedule.constant(0.9)
        assert relationship_flips(a, b) == 1

    def test_multiple_flips(self):
        a = DvsSchedule(((0.0, 1.2), (5.0, 0.7), (10.0, 1.3)))
        b = DvsSchedule.constant(0.9)
        assert relationship_flips(a, b) == 2

    def test_equal_voltages_ignored(self):
        a = DvsSchedule(((0.0, 1.0), (5.0, 0.9)))
        b = DvsSchedule.constant(1.0)
        # 1.0 vs 1.0 is "equal", then drops below: no sign flip counted.
        assert relationship_flips(a, b) == 0


class TestModuleAndCrossing:
    def test_module_center(self):
        m = Module("cpu", VoltageDomain.fixed("vd", 1.2), x=10, y=20,
                   width=100, height=50)
        assert m.center() == (60.0, 45.0)

    def test_crossing_validation(self):
        with pytest.raises(AnalysisError):
            Crossing("a", "a")
        with pytest.raises(AnalysisError):
            Crossing("a", "b", signals=0)

    def test_fixed_domain_helper(self):
        d = VoltageDomain.fixed("vd", 1.0)
        assert d.schedule.voltage_at(42.0) == 1.0
