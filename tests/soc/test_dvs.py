"""Tests for DVS schedule generation and pair statistics."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.soc.domain import DvsSchedule
from repro.soc.dvs import (
    DEFAULT_LADDER, pair_statistics, periodic_schedule,
    random_walk_schedule, true_shifter_demand,
)


class TestPeriodicSchedule:
    def test_waveform_shape(self):
        sched = periodic_schedule(1.2, 0.8, period=10.0, duty=0.3,
                                  cycles=2)
        assert sched.voltage_at(1.0) == 1.2
        assert sched.voltage_at(5.0) == 0.8
        assert sched.voltage_at(11.0) == 1.2

    def test_bad_duty(self):
        with pytest.raises(AnalysisError):
            periodic_schedule(1.2, 0.8, 10.0, duty=1.5)

    def test_bad_period(self):
        with pytest.raises(AnalysisError):
            periodic_schedule(1.2, 0.8, 0.0)


class TestRandomWalk:
    def test_values_on_ladder(self):
        rng = np.random.default_rng(1)
        sched = random_walk_schedule(rng, steps=20)
        for _, v in sched.points:
            assert v in DEFAULT_LADDER

    def test_reproducible(self):
        a = random_walk_schedule(np.random.default_rng(7), steps=12)
        b = random_walk_schedule(np.random.default_rng(7), steps=12)
        assert a.points == b.points

    def test_consecutive_holds_collapsed(self):
        rng = np.random.default_rng(3)
        sched = random_walk_schedule(rng, steps=30)
        voltages = [v for _, v in sched.points]
        assert all(x != y for x, y in zip(voltages, voltages[1:]))

    def test_start_index_respected(self):
        rng = np.random.default_rng(0)
        sched = random_walk_schedule(rng, steps=1, start_index=2)
        assert sched.points[0][1] == sorted(DEFAULT_LADDER)[2]


class TestPairStatistics:
    def test_static_pair(self):
        stats = pair_statistics(DvsSchedule.constant(0.8),
                                DvsSchedule.constant(1.2), horizon=10.0)
        assert stats.fraction_up == pytest.approx(1.0)
        assert stats.flips == 0
        assert not stats.needs_true_shifter

    def test_flipping_pair_needs_true(self):
        a = DvsSchedule(((0.0, 1.2), (5.0, 0.7)))
        b = DvsSchedule.constant(0.9)
        stats = pair_statistics(a, b, horizon=10.0)
        assert stats.flips == 1
        assert stats.needs_true_shifter
        assert stats.fraction_down == pytest.approx(0.5)
        assert stats.fraction_up == pytest.approx(0.5)

    def test_equal_fraction(self):
        a = DvsSchedule(((0.0, 1.0), (5.0, 1.2)))
        b = DvsSchedule.constant(1.0)
        stats = pair_statistics(a, b, horizon=10.0)
        assert stats.fraction_equal == pytest.approx(0.5)

    def test_bad_horizon(self):
        with pytest.raises(AnalysisError):
            pair_statistics(DvsSchedule.constant(1.0),
                            DvsSchedule.constant(1.0), horizon=0.0)

    def test_summary_flags_true_requirement(self):
        a = DvsSchedule(((0.0, 1.2), (5.0, 0.7)))
        stats = pair_statistics(a, DvsSchedule.constant(0.9), 10.0)
        assert "TRUE shifter required" in stats.summary()


class TestDemandMatrix:
    def test_all_ordered_pairs(self):
        schedules = {"a": DvsSchedule.constant(0.8),
                     "b": DvsSchedule.constant(1.2),
                     "c": DvsSchedule.constant(1.0)}
        demand = true_shifter_demand(schedules, horizon=10.0)
        assert len(demand) == 6
        assert demand[("a", "b")].fraction_up == pytest.approx(1.0)

    def test_dvs_domain_dominates_demand(self):
        rng = np.random.default_rng(5)
        schedules = {"dvs": random_walk_schedule(rng, steps=20,
                                                 dwell=1.0),
                     "fixed": DvsSchedule.constant(1.0)}
        demand = true_shifter_demand(schedules, horizon=20.0)
        # A random walk across the full ladder crosses 1.0 V at least
        # once with this seed.
        assert demand[("dvs", "fixed")].needs_true_shifter
