"""Tests for SoC shifter-insertion planning (no SPICE in the loop:
characterize_leakage=False keeps these fast)."""

import pytest

from repro.errors import AnalysisError
from repro.soc import (
    COMBINED_STRATEGY, CVS_STRATEGY, Crossing, DvsSchedule,
    INVERTER_STRATEGY, Module, SSTVS_STRATEGY, SSVS_STRATEGY,
    ShifterPlanner, Soc, VoltageDomain, manhattan,
)


def paper_soc():
    """The paper's Figure 2/3 four-module system: 0.8/1.0/1.2/1.4 V."""
    modules = [
        Module("m08", VoltageDomain.fixed("v08", 0.8), x=0, y=0),
        Module("m10", VoltageDomain.fixed("v10", 1.0), x=200, y=0),
        Module("m12", VoltageDomain.fixed("v12", 1.2), x=0, y=200),
        Module("m14", VoltageDomain.fixed("v14", 1.4), x=200, y=200),
    ]
    crossings = [
        Crossing("m08", "m10", 4), Crossing("m10", "m08", 4),
        Crossing("m08", "m12", 2), Crossing("m12", "m14", 2),
        Crossing("m14", "m08", 2), Crossing("m10", "m14", 1),
    ]
    return Soc(modules, crossings)


def dvs_soc():
    """Two modules whose relationship flips over time."""
    a = Module("cpu", VoltageDomain("vd1", DvsSchedule(
        ((0.0, 1.2), (5.0, 0.9)))), x=0, y=0)
    b = Module("dsp", VoltageDomain.fixed("vd2", 1.0), x=300, y=0)
    return Soc([a, b], [Crossing("cpu", "dsp", 8),
                        Crossing("dsp", "cpu", 8)])


@pytest.fixture(scope="module")
def planner():
    return ShifterPlanner(paper_soc(), characterize_leakage=False)


@pytest.fixture(scope="module")
def dvs_planner():
    return ShifterPlanner(dvs_soc(), characterize_leakage=False)


class TestSocModel:
    def test_duplicate_module_names_rejected(self):
        m = Module("a", VoltageDomain.fixed("v", 1.0))
        with pytest.raises(AnalysisError):
            Soc([m, Module("a", VoltageDomain.fixed("w", 1.0))], [])

    def test_unknown_crossing_module_rejected(self):
        m = Module("a", VoltageDomain.fixed("v", 1.0))
        with pytest.raises(AnalysisError):
            Soc([m], [Crossing("a", "ghost")])

    def test_graph_merges_parallel_crossings(self):
        soc = paper_soc()
        g = soc.graph()
        assert g["m08"]["m10"]["signals"] == 4
        assert g.number_of_nodes() == 4

    def test_domain_pairs(self):
        pairs = paper_soc().domain_pairs()
        assert ("v08", "v10") in pairs

    def test_manhattan(self):
        soc = paper_soc()
        d = manhattan(soc.modules["m08"], soc.modules["m14"])
        assert d == pytest.approx(400.0)


class TestPlannerCosts:
    def test_cvs_needs_extra_rails(self, planner):
        report = planner.plan(CVS_STRATEGY)
        assert report.extra_supply_rails > 0
        assert report.supply_route_length > 0

    def test_single_supply_strategies_need_none(self, planner):
        for strategy in (COMBINED_STRATEGY, SSTVS_STRATEGY):
            report = planner.plan(strategy)
            assert report.extra_supply_rails == 0

    def test_combined_needs_control_wires(self, planner):
        report = planner.plan(COMBINED_STRATEGY)
        assert report.control_wires > 0

    def test_sstvs_needs_no_control(self, planner):
        report = planner.plan(SSTVS_STRATEGY)
        assert report.control_wires == 0

    def test_sstvs_minimum_wiring_area(self, planner):
        reports = planner.compare()
        sstvs = reports[SSTVS_STRATEGY]
        assert sstvs.total_wiring_area <= min(
            r.total_wiring_area for r in reports.values())

    def test_shifter_count_equals_signals(self, planner):
        report = planner.plan(SSTVS_STRATEGY)
        assert report.shifter_count == 15  # sum of crossing signals

    def test_unknown_strategy(self, planner):
        with pytest.raises(AnalysisError):
            planner.plan("osmosis")

    def test_summary_text(self, planner):
        text = planner.plan(SSTVS_STRATEGY).summary()
        assert "sstvs" in text
        assert "feasible" in text


class TestDvsFeasibility:
    def test_static_strategies_infeasible_under_dvs(self, dvs_planner):
        for strategy in (INVERTER_STRATEGY, SSVS_STRATEGY):
            report = dvs_planner.plan(strategy)
            assert not report.feasible, strategy
            assert report.infeasible_pairs

    def test_true_strategies_feasible_under_dvs(self, dvs_planner):
        for strategy in (CVS_STRATEGY, COMBINED_STRATEGY,
                         SSTVS_STRATEGY):
            assert dvs_planner.plan(strategy).feasible, strategy

    def test_inverter_feasible_for_static_downshift(self):
        a = Module("hi", VoltageDomain.fixed("v1", 1.4), x=0, y=0)
        b = Module("lo", VoltageDomain.fixed("v2", 0.8), x=100, y=0)
        soc = Soc([a, b], [Crossing("hi", "lo")])
        planner = ShifterPlanner(soc, characterize_leakage=False)
        assert planner.plan(INVERTER_STRATEGY).feasible
        # But not for the reverse direction.
        soc2 = Soc([a, b], [Crossing("lo", "hi")])
        planner2 = ShifterPlanner(soc2, characterize_leakage=False)
        assert not planner2.plan(INVERTER_STRATEGY).feasible


class TestRegistryCosting:
    """The planner's wiring costs come from registry flags, not from
    hard-coded strategy names: a spec that declares uses_vddi_rail gets
    rail routing, one that declares needs_select gets control wires."""

    def test_strategy_cells_all_registered(self):
        from repro.cells.registry import get_cell
        from repro.soc import STRATEGY_CELLS
        for strategy, kind in STRATEGY_CELLS.items():
            spec = get_cell(kind)  # raises if unregistered
            assert spec.name == kind, strategy

    def test_rail_and_select_follow_registry_flags(self, planner):
        from repro.cells.registry import get_cell
        from repro.soc import STRATEGIES, STRATEGY_CELLS
        for strategy in STRATEGIES:
            spec = get_cell(STRATEGY_CELLS[strategy])
            report = planner.plan(strategy)
            assert (report.extra_supply_rails > 0) == \
                spec.uses_vddi_rail, strategy
            assert (report.control_wires > 0) == spec.needs_select, \
                strategy


class TestLeakageCache:
    def test_warm_plan_is_bitwise_identical_to_cold(self, tmp_path):
        """A SolveCache-backed plan replays leakage bitwise when warm.

        Cold and warm passes share one code path (worst_leakage ->
        characterize_kinds), so the only difference a warm cache may
        make is wall time — never bits.
        """
        from repro.runtime.cache import SolveCache

        def one_plan(cache):
            a = Module("hi", VoltageDomain.fixed("v1", 1.2), x=0, y=0)
            b = Module("lo", VoltageDomain.fixed("v2", 0.8),
                       x=100, y=0)
            soc = Soc([a, b], [Crossing("hi", "lo")])
            planner = ShifterPlanner(soc, cache=cache)
            return planner.plan(SSTVS_STRATEGY)

        cold_cache = SolveCache(tmp_path / "cache")
        cold = one_plan(cold_cache)
        assert cold_cache.stats.stores > 0
        warm_cache = SolveCache(tmp_path / "cache")
        warm = one_plan(warm_cache)
        assert warm_cache.stats.hits > 0
        assert warm_cache.stats.misses == 0
        assert warm.leakage == cold.leakage  # bitwise, not approx
        assert warm.leakage > 0.0
