"""Tests for the crossing-energy model (SPICE-backed, small SoC)."""

import pytest

from repro.errors import AnalysisError
from repro.soc import Crossing, Module, Soc, VoltageDomain
from repro.soc.energy import CrossingEnergyModel


@pytest.fixture(scope="module")
def model():
    a = Module("a", VoltageDomain.fixed("va", 0.8), x=0, y=0)
    b = Module("b", VoltageDomain.fixed("vb", 1.2), x=100, y=0)
    soc = Soc([a, b], [Crossing("a", "b", signals=4)])
    return CrossingEnergyModel(soc)


RATES = {("a", "b"): 100e6}  # 100 MHz toggle rate


class TestEnergyReport:
    def test_totals_positive(self, model):
        report = model.report("sstvs", RATES, horizon=1e-6)
        assert report.dynamic_energy > 0
        assert report.leakage_energy > 0
        assert report.total_energy == pytest.approx(
            report.dynamic_energy + report.leakage_energy)

    def test_dynamic_scales_with_rate(self, model):
        slow = model.report("sstvs", {("a", "b"): 10e6}, horizon=1e-6)
        fast = model.report("sstvs", {("a", "b"): 100e6}, horizon=1e-6)
        assert fast.dynamic_energy == pytest.approx(
            10 * slow.dynamic_energy, rel=1e-6)
        # Leakage is rate-independent.
        assert fast.leakage_energy == pytest.approx(
            slow.leakage_energy, rel=1e-9)

    def test_idle_crossing_is_leakage_only(self, model):
        report = model.report("sstvs", {}, horizon=1e-6)
        assert report.dynamic_energy == 0.0
        assert report.leakage_energy > 0

    def test_leakage_scales_with_horizon(self, model):
        short = model.report("sstvs", RATES, horizon=1e-6)
        long = model.report("sstvs", RATES, horizon=2e-6)
        assert long.leakage_energy == pytest.approx(
            2 * short.leakage_energy, rel=1e-9)

    def test_per_crossing_breakdown(self, model):
        report = model.report("sstvs", RATES, horizon=1e-6)
        assert ("a", "b") in report.per_crossing

    def test_compare_strategies(self, model):
        reports = model.compare(("sstvs", "combined"), RATES,
                                horizon=1e-6)
        # The combined VS leaks far more on a low-to-high crossing.
        assert reports["combined"].leakage_energy > \
            5 * reports["sstvs"].leakage_energy

    def test_bad_horizon(self, model):
        with pytest.raises(AnalysisError):
            model.report("sstvs", RATES, horizon=0.0)

    def test_summary_text(self, model):
        text = model.report("sstvs", RATES, horizon=1e-6).summary()
        assert "dynamic" in text and "leakage" in text

    def test_characterization_cached(self, model):
        model.report("sstvs", RATES, horizon=1e-6)
        n = len(model._cache)
        model.report("sstvs", RATES, horizon=2e-6)
        assert len(model._cache) == n
