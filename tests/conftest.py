"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.pdk import Pdk
from repro.spice import Circuit
from repro.spice.devices import Mosfet, MosfetParams


@pytest.fixture(scope="session")
def pdk():
    """Nominal 27 C PDK, shared (cards are immutable)."""
    return Pdk()


@pytest.fixture
def nmos_params():
    return MosfetParams(
        name="test_n", polarity="n", vto=0.39, n_slope=1.2, u0=0.018,
        tox=2.05e-9, lambda_clm=0.11, gamma=0.0, phi=0.85, eta_dibl=0.05,
        cgdo=3e-10, cgso=3e-10, cj=1e-3, ldiff=1e-7)


@pytest.fixture
def pmos_params():
    return MosfetParams(
        name="test_p", polarity="p", vto=0.35, n_slope=1.25, u0=0.008,
        tox=2.05e-9, lambda_clm=0.14, gamma=0.0, phi=0.85, eta_dibl=0.05,
        cgdo=3e-10, cgso=3e-10, cj=1.1e-3, ldiff=1e-7)


@pytest.fixture
def nmos(nmos_params):
    return Mosfet("mn", "d", "g", "s", "b", nmos_params,
                  w=0.2e-6, l=0.1e-6)


@pytest.fixture
def empty_circuit():
    return Circuit("test")


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
