"""Tests for SI-suffix parsing and engineering formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetlistError
from repro.units import format_eng, format_si_table, parse_value


class TestParseValue:
    @pytest.mark.parametrize("text,expected", [
        ("1", 1.0),
        ("-2.5", -2.5),
        ("1e-9", 1e-9),
        ("1.5E3", 1.5e3),
        (".5", 0.5),
        ("+3", 3.0),
    ])
    def test_plain_numbers(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text,expected", [
        ("1k", 1e3),
        ("1K", 1e3),
        ("2meg", 2e6),
        ("2MEG", 2e6),
        ("3g", 3e9),
        ("4t", 4e12),
        ("5m", 5e-3),
        ("6u", 6e-6),
        ("7n", 7e-9),
        ("8p", 8e-12),
        ("9f", 9e-15),
        ("1a", 1e-18),
    ])
    def test_suffixes(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    def test_mil_suffix(self):
        assert parse_value("1mil") == pytest.approx(25.4e-6)

    @pytest.mark.parametrize("text,expected", [
        ("10pF", 10e-12),
        ("1.2ns", 1.2e-9),
        ("3kohm", 3e3),
        ("2megohm", 2e6),
    ])
    def test_trailing_units_ignored(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    def test_bare_unit_letter(self):
        assert parse_value("1.2V") == pytest.approx(1.2)

    def test_percent(self):
        assert parse_value("5%") == pytest.approx(0.05)

    def test_numeric_passthrough(self):
        assert parse_value(3) == 3.0
        assert parse_value(2.5) == 2.5
        assert isinstance(parse_value(3), float)

    @pytest.mark.parametrize("text", ["", "abc", "--1", "1..2"])
    def test_garbage_raises(self, text):
        with pytest.raises(NetlistError):
            parse_value(text)

    def test_meg_beats_m(self):
        # 'meg' must not parse as milli + 'eg'.
        assert parse_value("1meg") == pytest.approx(1e6)


class TestFormatEng:
    @pytest.mark.parametrize("value,unit,expected", [
        (2.2e-11, "F", "22pF"),
        (1e3, "", "1k"),
        (1.5e-9, "s", "1.5ns"),
        (0.0, "V", "0V"),
    ])
    def test_examples(self, value, unit, expected):
        assert format_eng(value, unit) == expected

    def test_negative(self):
        assert format_eng(-3.3e-9, "A") == "-3.3nA"

    def test_non_finite(self):
        assert "nan" in format_eng(float("nan"), "V")
        assert "inf" in format_eng(float("inf"), "V")

    def test_si_table_three_digits(self):
        assert format_si_table(1.23456e-9, "A") == "1.23nA"

    @given(st.floats(min_value=1e-17, max_value=1e11,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip_parse(self, value):
        # Formatting then parsing recovers the value to print precision.
        text = format_eng(value, digits=9)
        assert parse_value(text) == pytest.approx(value, rel=1e-6)

    @given(st.floats(min_value=-1e11, max_value=-1e-17,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip_negative(self, value):
        text = format_eng(value, digits=9)
        assert parse_value(text) == pytest.approx(value, rel=1e-6)

    def test_huge_value_clamps_prefix(self):
        text = format_eng(1e15, "Hz")
        assert text.endswith("THz")

    def test_tiny_value_clamps_prefix(self):
        text = format_eng(1e-20, "F")
        assert text.endswith("aF")
